"""Open-loop load generation: seeded, heavy-tailed, wall-clock-free.

Every harness before this one was *closed-loop*: a fixed batch is
queued up front and the fleet chews through it, so offered load always
equals capacity and latency is meaningless.  A production deployment is
*open-loop* — requests arrive on their own schedule whether or not the
servers are keeping up, and what a user experiences is the time from
arrival to response, queueing included.

:func:`generate` produces that arrival schedule deterministically:

* **Sessions, not lone requests.**  Users arrive as sessions of
  geometrically-distributed length; a session's requests share one
  *affinity key* (fed to the frontend's sha256 consistent-hash ring, so
  keep-alive requests stick to one worker) and are spaced by lognormal
  think gaps.
* **Heavy-tailed inter-arrivals.**  Session inter-arrival gaps are
  lognormal (sigma ~1 gives the bursty, long-tailed arrival process
  real traffic shows); the scale is solved from the requested offered
  load, so the *mean* rate is exact while the instantaneous rate
  bursts.
* **Phases.**  A workload is a sequence of :class:`LoadPhase` steps
  (duration at an offered load), which is how servebench builds its
  burst-then-taper autoscaler scenarios.
* **Attack mix.**  A fraction of sessions end in an attack request
  (directory traversal / buffer overflow against the vulnerable server
  variant), so detection can be measured *under load* while the
  autoscaler is reshaping the fleet.

Times are simulated cycles — the same unit as worker cycle budgets —
and everything derives from one ``random.Random(seed)``, so a workload
is bit-reproducible across reruns and platforms.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.apps.webserver import (
    make_request,
    overflow_request,
    traversal_request,
)

#: Attack kinds the generator can plant (cycled per attack session).
ATTACK_KINDS = ("traversal", "overflow")


@dataclass(frozen=True)
class ServeRequest:
    """One open-loop request: arrival stamp, payload, session identity."""

    index: int  # arrival order within the workload
    session: int  # session the request belongs to
    arrival: float  # arrival time in simulated cycles
    payload: bytes
    kind: str = "clean"  # 'clean' | 'traversal' | 'overflow'
    tags: Optional[bytes] = None  # packed wire taint (None = untainted)

    @property
    def affinity(self) -> bytes:
        """Routing key: every request of one session hashes alike."""
        return b"session-%d" % self.session


@dataclass(frozen=True)
class LoadPhase:
    """A stretch of workload at one offered load."""

    duration: float  # cycles the phase lasts
    offered_load: float  # requests per 1e6 cycles (mean)


@dataclass
class LoadConfig:
    """Everything that shapes a generated workload."""

    seed: int = 0
    phases: Sequence[LoadPhase] = (LoadPhase(2_000_000.0, 10.0),)
    #: Mean keep-alive requests per session (geometric, >= 1).
    session_length_mean: float = 3.0
    #: Hard cap on one session's length (keeps the tail finite).
    session_length_max: int = 8
    #: Lognormal sigma of session inter-arrival gaps (burstiness).
    arrival_sigma: float = 1.0
    #: Mean think gap between a session's keep-alive requests (cycles).
    keepalive_gap: float = 30_000.0
    #: Lognormal sigma of keep-alive think gaps.
    keepalive_sigma: float = 0.5
    #: File sizes (KB) a session may fetch, with matching weights; a
    #: session picks once and keeps fetching the same file (keep-alive
    #: to one resource), so service demand is heavy-tailed too.
    sizes_kb: Sequence[int] = (4, 8, 16)
    size_weights: Sequence[float] = (0.7, 0.2, 0.1)
    #: Fraction of sessions whose final request is an attack.
    attack_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a workload needs at least one phase")
        for phase in self.phases:
            if phase.duration <= 0 or phase.offered_load <= 0:
                raise ValueError("phase duration and load must be positive")
        if len(self.sizes_kb) != len(self.size_weights):
            raise ValueError("sizes_kb and size_weights must match")
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise ValueError("attack_fraction must be in [0, 1]")
        if self.session_length_mean < 1.0:
            raise ValueError("sessions have at least one request")


def _lognormal(rng: random.Random, mean: float, sigma: float) -> float:
    """Lognormal sample with the given *mean* (not median)."""
    mu = math.log(mean) - 0.5 * sigma * sigma
    return rng.lognormvariate(mu, sigma)


def _session_length(rng: random.Random, config: LoadConfig) -> int:
    """Geometric session length with mean ``session_length_mean``."""
    extra_mean = config.session_length_mean - 1.0
    if extra_mean <= 0.0:
        return 1
    # Geometric on {0, 1, ...} with mean extra_mean.
    p = 1.0 / (1.0 + extra_mean)
    u = rng.random()
    extra = int(math.log(max(u, 1e-12)) / math.log(1.0 - p))
    return 1 + min(extra, config.session_length_max - 1)


def _attack_payload(kind: str) -> bytes:
    if kind == "traversal":
        return traversal_request()
    if kind == "overflow":
        return overflow_request()
    raise ValueError(f"unknown attack kind {kind!r}")


def generate(config: LoadConfig) -> List[ServeRequest]:
    """Produce the workload: requests sorted by arrival time.

    Deterministic in ``config`` — the same config yields the identical
    request list, which is what the servebench reproducibility gate
    leans on.
    """
    rng = random.Random(config.seed)
    raw: List[Tuple[float, int, bytes, str]] = []
    session = 0
    attack_cursor = 0
    phase_start = 0.0
    for phase in config.phases:
        # Sessions arrive at rate offered / mean_session_len; the gap
        # mean converts that to cycles between session starts.
        per_session = min(config.session_length_mean,
                          float(config.session_length_max))
        gap_mean = per_session * 1e6 / phase.offered_load
        t = phase_start + _lognormal(rng, gap_mean, config.arrival_sigma)
        phase_end = phase_start + phase.duration
        while t < phase_end:
            length = _session_length(rng, config)
            size = rng.choices(list(config.sizes_kb),
                               weights=list(config.size_weights))[0]
            attack_kind = ""
            if config.attack_fraction and \
                    rng.random() < config.attack_fraction:
                attack_kind = ATTACK_KINDS[attack_cursor
                                           % len(ATTACK_KINDS)]
                attack_cursor += 1
            when = t
            for i in range(length):
                if attack_kind and i == length - 1:
                    raw.append((when, session,
                                _attack_payload(attack_kind), attack_kind))
                else:
                    raw.append((when, session, make_request(size), "clean"))
                when += _lognormal(rng, config.keepalive_gap,
                                   config.keepalive_sigma)
            session += 1
            t += _lognormal(rng, gap_mean, config.arrival_sigma)
        phase_start = phase_end
    raw.sort(key=lambda entry: (entry[0], entry[1]))
    return [
        ServeRequest(index=i, session=sess, arrival=when,
                     payload=payload, kind=kind)
        for i, (when, sess, payload, kind) in enumerate(raw)
    ]


def offered_duration(config: LoadConfig) -> float:
    """Total phase time of a workload config (cycles)."""
    return sum(phase.duration for phase in config.phases)


def describe(workload: Sequence[ServeRequest]) -> dict:
    """Summary stats of one generated workload (for reports)."""
    if not workload:
        return {"requests": 0, "sessions": 0, "attacks": 0,
                "duration": 0.0, "offered_load": 0.0}
    duration = workload[-1].arrival - workload[0].arrival
    attacks = sum(1 for r in workload if r.kind != "clean")
    return {
        "requests": len(workload),
        "sessions": len({r.session for r in workload}),
        "attacks": attacks,
        "duration": duration,
        "offered_load": (len(workload) / (duration / 1e6)
                         if duration else 0.0),
    }
