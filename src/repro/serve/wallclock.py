"""Wall-clock serving: the open-loop workload on real OS processes.

The simulated loop in :mod:`repro.serve.simclock` is the deterministic,
gateable measurement; this module is its reality check.  Each worker is
an OS process running real recover-mode Machines; the parent *paces*
the workload's arrival schedule in wall time (``time_scale`` simulated
cycles per wall second), routes each arrival through the same seeded
frontend (session-affinity hash, identical placement to the sim), and
stamps completions with ``time.perf_counter``.  Latency is measured
against the *scheduled* arrival instant, as an open-loop harness must —
if the parent or a worker falls behind, the delay shows up in the tail
instead of quietly stretching the arrival process.

Results are real and therefore not bit-reproducible; servebench
reports them without gating.  The worker set is fixed (the autoscaler
is a property of the simulated loop, where spawning is free).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.fleet.driver import FleetConfig, run_worker
from repro.fleet.frontend import FleetFrontend
from repro.serve.loadgen import ServeRequest
from repro.serve.simclock import percentile

__all__ = ["run_wallclock"]

#: Seconds a straggler worker gets before the run aborts as partial.
RESULT_TIMEOUT = 120.0


def _wall_worker(config, worker_id, inbox, outbox):
    """Worker-process loop: serve one request per message until None."""
    while True:
        item = inbox.get()
        if item is None:
            return
        index, payload, tags = item
        started = time.perf_counter()
        summary, _machine = run_worker(config, worker_id, [(payload, tags)])
        finished = time.perf_counter()
        outbox.put({
            "index": index,
            "worker": worker_id,
            "started": started,
            "finished": finished,
            "served": summary["served"] or 0,
            "quarantined": summary["quarantined"],
            "alerts": len(summary["alerts"]),
            "fatal": summary["error"] is not None,
        })


def run_wallclock(workload: Sequence[ServeRequest], *,
                  config: Optional[FleetConfig] = None,
                  workers: int = 2, seed: int = 0,
                  routing: str = "hash",
                  time_scale: float = 1e6,
                  chaos=None, supervision=None,
                  shed_limit: Optional[int] = None) -> Dict:
    """Serve one workload on real processes; returns a report dict.

    ``time_scale`` converts the workload's cycle stamps to wall time
    (cycles per second): arrivals are replayed at
    ``arrival / time_scale`` seconds after the run starts.  The parent
    warms the shared compile caches before forking so worker processes
    inherit them and the first request isn't a compile benchmark.

    With ``chaos`` (a :class:`~repro.chaos.schedule.ChaosSchedule`
    carrying per-worker ``WorkerChaos`` directives — real ``SIGKILL``
    and sleep-stalls) or ``supervision`` set, the run goes through
    :class:`~repro.fleet.supervised.SupervisedFleet`: heartbeat
    failure detection, blob replication, replacement processes joined
    via ``add_worker``, and journal-exact replay.
    """
    import multiprocessing as mp

    if chaos is not None or supervision is not None:
        from repro.fleet.supervised import SupervisedFleet

        fleet = SupervisedFleet(
            config, workers=workers, seed=seed, routing=routing,
            shed_limit=shed_limit, supervision=supervision, chaos=chaos)
        ordered = sorted(workload, key=lambda r: (r.arrival, r.index))
        encoded = [(r.index, r.payload, r.tags, r.kind) for r in ordered]
        arrivals = {r.index: r.arrival for r in ordered}
        report = fleet.run(encoded, arrivals=arrivals,
                           time_scale=time_scale)
        report["time_scale"] = time_scale
        return report

    if workers <= 0:
        raise ValueError("serving needs at least one worker")
    config = config or FleetConfig()
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # platforms without fork
        ctx = mp.get_context("spawn")

    # Warm the process-wide compile caches pre-fork (fork children
    # inherit them; spawn children pay the compile once each).
    from repro.fleet.driver import build_worker

    build_worker(config, "wall-warm")

    frontend = FleetFrontend([f"w{i}" for i in range(workers)],
                             policy=routing, seed=seed)
    inboxes = {wid: ctx.Queue() for wid in frontend.order}
    outbox = ctx.Queue()
    procs = [
        ctx.Process(target=_wall_worker,
                    args=(config, wid, inboxes[wid], outbox), daemon=True)
        for wid in frontend.order
    ]
    for proc in procs:
        proc.start()

    sent: Dict[int, Dict] = {}
    dropped = 0
    epoch = time.perf_counter()
    try:
        for request in sorted(workload, key=lambda r: (r.arrival, r.index)):
            target_wall = epoch + request.arrival / time_scale
            delay = target_wall - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            wid = frontend.submit(request.payload, key=request.affinity)
            if wid is None:
                dropped += 1
                continue
            frontend.slots[wid].queue.clear()  # bookkeeping only
            sent[request.index] = {
                "kind": request.kind,
                "worker": wid,
                "arrival_wall": target_wall,
            }
            inboxes[wid].put((request.index, request.payload, request.tags))
        for wid in frontend.order:
            inboxes[wid].put(None)

        completions: List[Dict] = []
        deadline = time.perf_counter() + RESULT_TIMEOUT
        while len(completions) < len(sent):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                completions.append(outbox.get(timeout=remaining))
            except Exception:
                break
    finally:
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()

    latencies: List[float] = []
    served = quarantined = alerts_on_clean = detected = attacks = 0
    for done in completions:
        meta = sent[done["index"]]
        latencies.append(done["finished"] - meta["arrival_wall"])
        served += done["served"]
        quarantined += done["quarantined"]
        if meta["kind"] == "clean":
            alerts_on_clean += done["alerts"]
        else:
            attacks += 1
            if done["quarantined"] or done["fatal"]:
                detected += 1
    wall_seconds = time.perf_counter() - epoch
    lat_ms = sorted(v * 1e3 for v in latencies)
    return {
        "mode": "wallclock",
        "workers": workers,
        "requests": len(workload),
        "completed": len(completions),
        "dropped": dropped,
        "served": served,
        "quarantined": quarantined,
        "attacks": attacks,
        "detected": detected,
        "false_alerts": alerts_on_clean,
        "time_scale": time_scale,
        "wall_seconds": round(wall_seconds, 3),
        "throughput_rps": (round(len(completions) / wall_seconds, 3)
                           if wall_seconds else 0.0),
        "latency_ms": {
            "p50": round(percentile(lat_ms, 50.0), 3),
            "p95": round(percentile(lat_ms, 95.0), 3),
            "p99": round(percentile(lat_ms, 99.0), 3),
            "mean": (round(sum(lat_ms) / len(lat_ms), 3)
                     if lat_ms else 0.0),
            "max": round(lat_ms[-1], 3) if lat_ms else 0.0,
        },
    }
