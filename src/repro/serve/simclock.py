"""Event-driven serving: a simulated clock over real worker budgets.

The serving loop interleaves two event streams on one simulated clock:
open-loop *arrivals* from :mod:`repro.serve.loadgen`, and *completions*
from workers whose per-request cycle budgets are **measured, not
modelled**: every distinct payload is executed once, for real, on a
recover-mode worker Machine via :func:`repro.fleet.driver.run_worker`,
and the cycles it consumed (plus its security outcome — served,
quarantined, fatal) become the budget every simulated dispatch of that
payload replays.  The simulation is therefore wall-clock-free and
bit-reproducible, while its service times and its detection results
are the DIFT machine's own.

Requests queue at the frontend when every routable worker is busy —
each request records its enqueue / dispatch / complete stamps, and the
run emits p50/p95/p99 latency, a queue-depth time series, and the
autoscaler's worker-count trace.

For *real* (non-simulated) measurements there is a parallel
multiprocessing wall-clock mode in :mod:`repro.serve.wallclock`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.journal import RequestJournal
from repro.chaos.replica import RecoveryPolicy, Replica, ReplicaStore
from repro.chaos.schedule import ChaosSchedule
from repro.fleet.driver import FleetConfig, run_worker
from repro.fleet.frontend import FleetFrontend
from repro.fleet.wire import TaggedMessage, WireFormatError
from repro.resil.transient import RetryPolicy
from repro.serve.autoscaler import Autoscaler, AutoscalerConfig
from repro.serve.loadgen import ServeRequest

__all__ = [
    "RequestRecord",
    "ServeResult",
    "ServeSim",
    "ServiceCost",
    "ServiceModel",
    "SimClock",
    "percentile",
]


class SimClock:
    """A deterministic event queue over simulated cycles."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0

    def schedule(self, when: float, kind: str, data: object = None) -> None:
        """Enqueue an event; ties break by insertion order."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, kind, data))
        self._seq += 1

    def pop(self) -> Tuple[str, object]:
        """Advance to and return the next event."""
        when, _seq, kind, data = heapq.heappop(self._heap)
        self.now = when
        return kind, data

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (0 for an empty sequence)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


# -- measured service model ---------------------------------------------


@dataclass(frozen=True)
class ServiceCost:
    """What one real execution of a payload cost and decided."""

    cycles: float  # marginal cycles beyond worker boot
    outcome: str  # 'served' | 'quarantined' | 'fatal' | 'noop'
    policy_ids: Tuple[str, ...] = ()
    alerts: int = 0
    response_sha: str = ""
    error: str = ""
    #: repro.spec activity during the measurement (speculate workers).
    spec_commits: int = 0
    spec_rollbacks: int = 0

    @property
    def fatal(self) -> bool:
        """True when the worker did not survive the request."""
        return self.outcome == "fatal"


class ServiceModel:
    """Per-payload cycle budgets measured on a real worker Machine.

    One instance is shared across every sweep point of a bench run, so
    each distinct payload is executed exactly once no matter how many
    thousands of simulated requests replay it.  ``boot_cycles`` — a
    worker Machine brought up with an empty queue — doubles as the
    autoscaler's spawn delay for new workers.

    A quarantined request's budget is approximated by the instructions
    it retired before the supervisor rolled it back (rollback restores
    the cycle counters, so the post-run counter alone would price an
    absorbed attack at zero).
    """

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        self._cache: Dict[Tuple[bytes, Optional[bytes]], ServiceCost] = {}
        self._boot: Optional[Dict] = None
        self._migration: Optional[Tuple[int, float]] = None

    def _boot_summary(self) -> Dict:
        if self._boot is None:
            summary, _machine = run_worker(self.config, "svc-boot", [])
            self._boot = summary
        return self._boot

    @property
    def boot_cycles(self) -> float:
        """Cycles to bring a worker up before it can serve (spawn cost)."""
        return float(self._boot_summary()["cycles"])

    @property
    def measured(self) -> int:
        """Distinct payloads executed so far."""
        return len(self._cache)

    def _measure_migration(self) -> Tuple[int, float]:
        """(blob bytes, cycles) to move one worker, from a real pack.

        Packs an actual booted worker via :mod:`repro.resil.migrate`
        and prices shipping the blob at network device rates — the same
        cost model every simulated byte already pays.
        """
        if self._migration is None:
            from repro.resil.migrate import pack_worker
            from repro.runtime.devices import DeviceCosts

            _summary, machine = run_worker(self.config, "svc-mig-probe", [])
            blob = pack_worker(machine)
            costs = DeviceCosts()
            self._migration = (
                len(blob), costs.net_base + len(blob) * costs.net_byte)
        return self._migration

    @property
    def migration_blob_bytes(self) -> int:
        """Measured wire size of one packed worker."""
        return self._measure_migration()[0]

    @property
    def migration_cycles(self) -> float:
        """Cycles to pack, ship and rehydrate one worker's state."""
        return self._measure_migration()[1]

    def cost(self, payload: bytes,
             tags: Optional[bytes] = None) -> ServiceCost:
        """The measured budget for one payload (cached)."""
        key = (bytes(payload), tags)
        entry = self._cache.get(key)
        if entry is None:
            entry = self._measure(key[0], tags)
            self._cache[key] = entry
        return entry

    def _measure(self, payload: bytes, tags: Optional[bytes]) -> ServiceCost:
        boot = self._boot_summary()
        summary, _machine = run_worker(self.config, "svc-probe",
                                       [(payload, tags)])
        cycles = max(1.0, float(summary["cycles"]) - float(boot["cycles"]))
        policy_ids = tuple(a["policy_id"] for a in summary["alerts"])
        spec = summary.get("spec") or {}
        spec_commits = spec.get("commits", 0)
        spec_rollbacks = spec.get("rollbacks", 0)
        response_sha = ""
        if summary["responses"]:
            response_sha = hashlib.sha256(
                summary["responses"][0]).hexdigest()
        if summary["error"] is not None:
            return ServiceCost(
                cycles=cycles, outcome="fatal", policy_ids=policy_ids,
                alerts=len(summary["alerts"]),
                error=summary["error"]["message"],
                spec_commits=spec_commits, spec_rollbacks=spec_rollbacks)
        if summary["quarantined"]:
            burned = 0.0
            if summary["incidents"]:
                burned = (summary["incidents"][0]["instruction_count"]
                          - boot["instructions"])
            return ServiceCost(
                cycles=max(cycles, float(burned), 1.0),
                outcome="quarantined", policy_ids=policy_ids,
                alerts=len(summary["alerts"]),
                spec_commits=spec_commits, spec_rollbacks=spec_rollbacks)
        outcome = "served" if summary["served"] else "noop"
        return ServiceCost(
            cycles=cycles, outcome=outcome, policy_ids=policy_ids,
            alerts=len(summary["alerts"]), response_sha=response_sha,
            spec_commits=spec_commits, spec_rollbacks=spec_rollbacks)

    def mean_cycles(self, payloads: Sequence[bytes]) -> float:
        """Mean measured budget over a payload set (capacity planning)."""
        if not payloads:
            return 0.0
        return sum(self.cost(p).cycles for p in payloads) / len(payloads)


# -- per-request bookkeeping --------------------------------------------


@dataclass
class RequestRecord:
    """Lifecycle stamps of one simulated request."""

    index: int
    session: int
    kind: str
    enqueue: float
    worker: str = ""
    dispatch: float = -1.0
    complete: float = -1.0
    service: float = 0.0
    outcome: str = "pending"
    policy_ids: Tuple[str, ...] = ()
    alerts: int = 0
    response_sha: str = ""
    rerouted: bool = False
    #: True when the request changed workers via live migration (its
    #: draining worker shipped it, still queued, inside the state blob).
    migrated: bool = False
    #: repro.spec activity measured for this payload (speculate workers).
    spec_commits: int = 0
    spec_rollbacks: int = 0

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queueing included)."""
        return self.complete - self.enqueue

    @property
    def queue_wait(self) -> float:
        """Time spent waiting for a worker."""
        return self.dispatch - self.enqueue

    def to_dict(self) -> Dict:
        return {
            "index": self.index, "session": self.session,
            "kind": self.kind, "worker": self.worker,
            "enqueue": self.enqueue, "dispatch": self.dispatch,
            "complete": self.complete, "service": self.service,
            "outcome": self.outcome, "policy_ids": list(self.policy_ids),
            "alerts": self.alerts, "response_sha": self.response_sha,
            "rerouted": self.rerouted, "migrated": self.migrated,
            "spec_commits": self.spec_commits,
            "spec_rollbacks": self.spec_rollbacks,
        }


@dataclass
class _SimWorker:
    """Serving-loop state for one (simulated) worker."""

    worker_id: str
    spawned_at: float = 0.0
    available_at: float = 0.0  # boot finishes here
    busy: bool = False
    served: int = 0
    busy_cycles: float = 0.0
    retired_at: Optional[float] = None
    ejected: bool = False
    # -- chaos state ------------------------------------------------------
    #: Bumped on each fail-stop crash; completions scheduled under an
    #: older incarnation are cancelled (the work died with the worker).
    incarnation: int = 0
    crashed: bool = False
    crashed_at: float = -1.0
    #: Frozen (unresponsive but alive) until this cycle stamp.
    stall_until: float = 0.0
    #: The request currently executing (recovered on crash detection).
    inflight: Optional[ServeRequest] = None
    #: Highest request index completed — the replication watermark.
    completed_mark: int = -1
    since_replicate: int = 0
    #: Quarantine incidents this worker holds (evidence continuity).
    evidence: int = 0


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    records: List[RequestRecord]
    depth_series: List[Dict] = field(default_factory=list)
    scale_events: List[Dict] = field(default_factory=list)
    workers: Dict[str, _SimWorker] = field(default_factory=dict)
    dropped: int = 0
    rerouted: int = 0
    #: Requests moved to another worker by drain-via-migration.
    migrated: int = 0
    frontend: Optional[FleetFrontend] = None
    #: Arrivals refused by admission control (503-style shedding).
    shed: int = 0
    #: Open requests moved to a replacement after a failure.
    replayed: int = 0
    #: Completions from a dead incarnation, cancelled outright.
    stale_completions: int = 0
    #: Response frames undeliverable within one retry budget (the
    #: request re-executed; the journal still completed it once).
    acks_lost: int = 0
    #: Cycles spent waiting out wire retransmit backoff.
    retransmit_cycles: float = 0.0
    chaos_events: List[Dict] = field(default_factory=list)
    recoveries: List[Dict] = field(default_factory=list)
    journal: Optional[RequestJournal] = None
    replica_store: Optional[ReplicaStore] = None

    # -- outcome tallies -------------------------------------------------

    @property
    def served(self) -> int:
        return sum(1 for r in self.records if r.outcome == "served")

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.records if r.outcome == "quarantined")

    @property
    def false_alerts(self) -> int:
        """Alerts raised while handling clean traffic."""
        return sum(r.alerts for r in self.records if r.kind == "clean")

    def attack_detection(self) -> Dict:
        """Detection tally over non-clean requests.

        Requests shed by admission control never reached a worker, so
        they are excluded from the denominator — an explicit 503 is not
        a missed detection (and the chaos gates separately require that
        no *admitted* attack escapes).
        """
        attacks = [r for r in self.records if r.kind != "clean"
                   and r.outcome != "rejected"]
        caught = [r for r in attacks
                  if r.outcome in ("quarantined", "fatal")]
        return {
            "attacks": len(attacks),
            "detected": len(caught),
            "detection_rate": (len(caught) / len(attacks)
                               if attacks else 1.0),
        }

    # -- latency / throughput --------------------------------------------

    def latencies(self, kinds: Optional[Sequence[str]] = None) -> List[float]:
        """Completed-request latencies (optionally filtered by kind)."""
        return [r.latency for r in self.records
                if r.complete >= 0.0
                and (kinds is None or r.kind in kinds)]

    def latency_percentiles(self) -> Dict[str, float]:
        lat = self.latencies()
        return {"p50": percentile(lat, 50.0),
                "p95": percentile(lat, 95.0),
                "p99": percentile(lat, 99.0),
                "mean": sum(lat) / len(lat) if lat else 0.0,
                "max": max(lat) if lat else 0.0}

    @property
    def makespan(self) -> float:
        """First arrival to last completion, in cycles."""
        if not self.records:
            return 0.0
        start = min(r.enqueue for r in self.records)
        end = max((r.complete for r in self.records if r.complete >= 0.0),
                  default=start)
        return end - start

    @property
    def throughput(self) -> float:
        """Served requests per 1e6 cycles of makespan."""
        span = self.makespan
        return self.served / (span / 1e6) if span else 0.0

    @property
    def peak_workers(self) -> int:
        """Most routable workers observed at any depth sample."""
        if not self.depth_series:
            return len([w for w in self.workers.values()
                        if w.retired_at is None and not w.ejected])
        return max(s["routable_workers"] for s in self.depth_series)

    @property
    def max_queue_depth(self) -> int:
        if not self.depth_series:
            return 0
        return max(s["queued"] for s in self.depth_series)

    def worker_trace(self) -> List[Tuple[float, int]]:
        """(time, routable workers) samples — the autoscaler's story."""
        return [(s["time"], s["routable_workers"])
                for s in self.depth_series]

    def utilization(self) -> Dict[str, float]:
        """Per-worker busy fraction over its in-rotation lifetime."""
        out: Dict[str, float] = {}
        span = self.makespan or 1.0
        for wid, worker in self.workers.items():
            end = worker.retired_at if worker.retired_at is not None \
                else (min(r.enqueue for r in self.records) + span
                      if self.records else worker.spawned_at)
            alive = max(end - worker.spawned_at, 1.0)
            out[wid] = min(worker.busy_cycles / alive, 1.0)
        return out

    # -- reproducibility -------------------------------------------------

    def digest(self) -> str:
        """Deterministic fingerprint of the run's observable outcome."""
        canonical = {
            "records": [r.to_dict() for r in self.records],
            "scale_events": self.scale_events,
            "dropped": self.dropped,
            "rerouted": self.rerouted,
            "migrated": self.migrated,
            "shed": self.shed,
            "replayed": self.replayed,
            "chaos_events": self.chaos_events,
            "recoveries": self.recoveries,
        }
        blob = json.dumps(canonical, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def outcome_digest(self) -> str:
        """Fingerprint of *what was served*, not when or by whom.

        Hashes each request's authoritative outcome — index, kind,
        outcome, response digest, alerts, policies — sorted by index,
        with all timing and worker placement excluded.  A chaos run
        that crashed workers, replayed their open requests and
        suppressed zombie duplicates must produce the same outcome
        digest as an uncrashed control run of the same workload; that
        equality is the exactly-once gate of
        ``repro.harness.chaosbench``.  Requests that never completed
        (pending) or were refused before admission (dropped, rejected)
        are excluded — admission differences are gated by their
        explicit counters instead.
        """
        rows = [
            [r.index, r.kind, r.outcome, r.response_sha, r.alerts,
             sorted(r.policy_ids)]
            for r in self.records
            if r.outcome not in ("pending", "dropped", "rejected")
        ]
        rows.sort()
        blob = json.dumps(rows, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def recovery_latency_max(self) -> float:
        """Slowest failure-to-replacement-ready interval, in cycles."""
        return max((rec["recovery_latency"] for rec in self.recoveries),
                   default=0.0)

    def metrics(self):
        """``serve.*`` instruments plus the frontend's routing counters."""
        from repro.fleet.observe import frontend_metrics
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        pcts = self.latency_percentiles()
        reg.counter("serve.requests", "open-loop arrivals").value = \
            len(self.records)
        reg.counter("serve.served", "requests answered").value = self.served
        reg.counter("serve.quarantined",
                    "attacks absorbed by rollback").value = self.quarantined
        reg.counter("serve.dropped",
                    "arrivals refused by backpressure").value = self.dropped
        reg.counter("serve.rerouted",
                    "requests re-routed after ejection").value = self.rerouted
        reg.counter("serve.migrated",
                    "requests moved by drain-via-migration").value = \
            self.migrated
        reg.counter("serve.migrations", "worker live migrations").value = sum(
            1 for e in self.scale_events if e["action"] == "migrate")
        reg.counter("serve.false_alerts",
                    "alerts on clean traffic").value = self.false_alerts
        spec_commits = sum(r.spec_commits for r in self.records)
        spec_rollbacks = sum(r.spec_rollbacks for r in self.records)
        if spec_commits or spec_rollbacks:
            reg.counter("serve.spec.commits",
                        "speculation epochs committed across the "
                        "fleet").value = spec_commits
            reg.counter("serve.spec.rollbacks",
                        "speculation epochs rolled back and "
                        "replayed").value = spec_rollbacks
        reg.counter("serve.shed",
                    "arrivals refused by admission control").value = self.shed
        reg.counter("serve.replayed",
                    "requests replayed after worker failure").value = \
            self.replayed
        reg.counter("serve.crashes", "chaos faults applied").value = sum(
            1 for e in self.chaos_events if e.get("applied"))
        reg.counter("serve.recoveries",
                    "dead workers detected and replaced").value = \
            len(self.recoveries)
        reg.counter("serve.acks_lost",
                    "response frames undeliverable in one budget").value = \
            self.acks_lost
        if self.journal is not None:
            reg.counter("serve.duplicates_suppressed",
                        "late completions deduped by the journal").value = \
                self.journal.duplicates
            reg.gauge("serve.journal_open",
                      "admitted requests never completed").set(
                self.journal.open_count)
        if self.recoveries:
            reg.gauge("serve.recovery_latency.max",
                      "slowest failure-to-ready interval (cycles)").set(
                round(self.recovery_latency_max(), 1))
        for name, value in pcts.items():
            reg.gauge(f"serve.latency.{name}",
                      "arrival-to-completion latency (cycles)").set(
                round(value, 3))
        hist = reg.histogram("serve.latency", "per-request latency")
        for lat in self.latencies():
            hist.observe(lat)
        reg.gauge("serve.throughput",
                  "served requests per 1e6 cycles").set(
            round(self.throughput, 6))
        reg.gauge("serve.queue_depth.max",
                  "deepest sampled frontend queue").set(self.max_queue_depth)
        reg.gauge("serve.workers.peak",
                  "most routable workers at once").set(self.peak_workers)
        reg.counter("serve.scale_ups", "autoscaler spawns").value = sum(
            1 for e in self.scale_events if e["action"] == "scale_up")
        reg.counter("serve.drains", "autoscaler drains").value = sum(
            1 for e in self.scale_events if e["action"] == "drain")
        reg.counter("serve.retires", "drained workers removed").value = sum(
            1 for e in self.scale_events if e["action"] == "retire")
        if self.frontend is not None:
            frontend_metrics(self.frontend, reg)
        return reg

    def to_report(self) -> Dict:
        """JSON-ready summary (records elided to tallies)."""
        detection = self.attack_detection()
        report = {
            "requests": len(self.records),
            "served": self.served,
            "quarantined": self.quarantined,
            "dropped": self.dropped,
            "rerouted": self.rerouted,
            "migrated": self.migrated,
            "shed": self.shed,
            "replayed": self.replayed,
            "false_alerts": self.false_alerts,
            "detection": detection,
            "latency": {k: round(v, 1)
                        for k, v in self.latency_percentiles().items()},
            "throughput": round(self.throughput, 3),
            "makespan": round(self.makespan, 1),
            "max_queue_depth": self.max_queue_depth,
            "peak_workers": self.peak_workers,
            "scale_events": self.scale_events,
            "digest": self.digest(),
            "outcome_digest": self.outcome_digest(),
        }
        if self.journal is not None:
            report["journal"] = self.journal.to_dict()
        if self.chaos_events or self.recoveries:
            report["chaos"] = {
                "events": self.chaos_events,
                "recoveries": self.recoveries,
                "stale_completions": self.stale_completions,
                "acks_lost": self.acks_lost,
                "retransmit_cycles": round(self.retransmit_cycles, 1),
                "recovery_latency_max": round(
                    self.recovery_latency_max(), 1),
            }
        if self.replica_store is not None:
            report["replication"] = self.replica_store.to_dict()
        return report


# -- the serving loop ----------------------------------------------------


class ServeSim:
    """Open-loop serving of a workload over measured worker budgets.

    Arrivals route through a :class:`FleetFrontend` (hash policy keyed
    by session affinity by default); busy workers queue requests at
    their slot; completions free the worker for the next queued
    request.  With an :class:`AutoscalerConfig` the worker set grows
    and shrinks at tick cadence: spawned workers pay the measured boot
    budget before their first dispatch, drained workers serve out their
    queue and retire.  A worker whose request comes back *fatal*
    (raise-mode alert or unrecoverable fault in the measurement) is
    ejected and its queue re-routes to the survivors.

    With a :class:`~repro.chaos.schedule.ChaosSchedule` the loop runs
    the full failure story: fail-stop crashes kill a worker silently
    (its in-flight request and queue go with it), a heartbeat detector
    declares it dead ``detection_cycles`` later, and recovery spawns a
    replacement rehydrated from the last replicated checkpoint, then
    replays exactly the request-id journal's open set.  Stalls freeze a
    worker without killing it; a stall outlasting the detector makes a
    *zombie* whose late completion the journal suppresses.  Wire chaos
    corrupts/drops response frames, absorbed by the frontend's bounded
    retransmit.  ``shed_limit`` arms 503-style admission shedding.
    """

    def __init__(self, *, workers: int = 2, seed: int = 0,
                 routing: str = "hash",
                 queue_capacity: Optional[int] = None,
                 config: Optional[FleetConfig] = None,
                 service_model: Optional[ServiceModel] = None,
                 autoscaler: Optional[AutoscalerConfig] = None,
                 migrate_on_drain: bool = False,
                 migration_cycles: Optional[float] = None,
                 chaos: Optional[ChaosSchedule] = None,
                 recovery: Optional[RecoveryPolicy] = None,
                 shed_limit: Optional[int] = None,
                 wire_retry: Optional[RetryPolicy] = None,
                 tracing: bool = False) -> None:
        if workers <= 0:
            raise ValueError("serving needs at least one worker")
        self.initial_workers = workers
        self.seed = seed
        self.routing = routing
        self.queue_capacity = queue_capacity
        self.service = service_model or ServiceModel(config)
        self.autoscaler_config = autoscaler
        #: Seeded adversity for this run (None = a polite fleet).
        self.chaos = chaos
        #: Failure-detection / replication tuning; a default policy is
        #: armed whenever chaos is present.
        self.recovery = recovery
        self.shed_limit = shed_limit
        self.wire_retry = wire_retry
        #: Drain via live migration: a drained worker finishes its
        #: in-flight request (the pack point is a request boundary, as
        #: in repro.resil.migrate), then its queued requests ship to the
        #: survivors inside the state blob and it retires immediately —
        #: zero dropped, zero re-executed.  Plain drain instead serves
        #: out the whole queue before retiring.
        self.migrate_on_drain = migrate_on_drain
        #: Override for the measured pack+ship+rehydrate cost (None =
        #: price a real blob via ServiceModel.migration_cycles).
        self._migration_cycles = migration_cycles
        self.tracer = None
        if tracing:
            from repro.obs.tracer import Tracer

            self.tracer = Tracer()

    @property
    def migration_cycles(self) -> float:
        """Simulated cost of one worker migration."""
        if self._migration_cycles is not None:
            return self._migration_cycles
        return self.service.migration_cycles

    # -- event handlers --------------------------------------------------

    def run(self, workload: Sequence[ServeRequest]) -> ServeResult:
        """Serve one workload to completion; returns the full result."""
        clock = SimClock()
        frontend = FleetFrontend(
            [f"w{i}" for i in range(self.initial_workers)],
            policy=self.routing, seed=self.seed,
            queue_capacity=self.queue_capacity,
            shed_limit=self.shed_limit)
        workers: Dict[str, _SimWorker] = {
            wid: _SimWorker(wid) for wid in frontend.order
        }
        autoscaler = (Autoscaler(self.autoscaler_config)
                      if self.autoscaler_config is not None else None)
        chaos = self.chaos
        #: Replication + failure detection arm only when asked for —
        #: a chaos-free run stays byte-for-byte the PR-6/7 loop.
        protected = chaos is not None or self.recovery is not None
        policy = self.recovery or RecoveryPolicy()
        wire_retry = self.wire_retry or RetryPolicy()
        journal = RequestJournal()
        store = ReplicaStore()
        result = ServeResult(records=[], workers=workers, frontend=frontend,
                             journal=journal,
                             replica_store=store if protected else None)
        records: Dict[int, RequestRecord] = {}
        open_requests = 0
        next_worker = self.initial_workers
        #: Workers waiting to migrate at their next request boundary.
        migrating: set = set()
        #: Wire-attempt offsets for re-delivered responses: a failed
        #: delivery must not replay the same doomed attempt sequence.
        wire_base: Dict[int, int] = {}

        for request in workload:
            clock.schedule(request.arrival, "arrival", request)
        if autoscaler is not None and workload:
            clock.schedule(self.autoscaler_config.interval, "tick")
        if chaos is not None:
            for event in chaos.events:
                clock.schedule(event.time, "chaos", event)

        def dispatch(wid: str) -> None:
            worker = workers[wid]
            slot = frontend.slots[wid]
            if (worker.busy or not slot.queue or worker.ejected
                    or worker.crashed):
                return
            if clock.now < worker.available_at or clock.now < worker.stall_until:
                return  # booting/stalled; a 'ready' event will retry
            request = slot.queue.pop(0)
            record = records[request.index]
            cost = self.service.cost(request.payload, request.tags)
            record.worker = wid
            record.dispatch = clock.now
            record.service = cost.cycles
            worker.busy = True
            worker.inflight = request
            journal.assign(request.index, wid)
            clock.schedule(clock.now + cost.cycles, "complete",
                           (wid, request, cost, worker.incarnation))

        def finish_draining(wid: str) -> None:
            slot = frontend.slots[wid]
            worker = workers[wid]
            if slot.draining and not slot.queue and not worker.busy:
                frontend.retire(wid)
                worker.retired_at = clock.now
                scale_event("retire", wid,
                            autoscaler.smoothed if autoscaler else 0.0)

        def try_migrate(wid: str) -> None:
            """Pack and retire a draining worker at a request boundary.

            Waits for the in-flight request to finish (the pack point
            is the accept boundary, exactly where repro.resil takes its
            checkpoints); queued requests ship inside the blob and land
            on the survivors after the measured migration delay.
            """
            worker = workers[wid]
            if wid not in migrating or worker.busy:
                return
            migrating.discard(wid)
            slot = frontend.slots[wid]
            moved = list(slot.queue)
            slot.queue.clear()
            frontend.retire(wid)
            worker.retired_at = clock.now
            scale_event("migrate", wid,
                        autoscaler.smoothed if autoscaler else 0.0)
            if moved:
                clock.schedule(clock.now + self.migration_cycles,
                               "migrated", (wid, moved))

        def on_migrated(wid: str, moved: List[ServeRequest]) -> None:
            """The state blob landed: requeue its requests, never drop."""
            nonlocal open_requests
            for request in moved:
                record = records[request.index]
                target = frontend.submit(request, key=request.affinity)
                if target is None:
                    # Migrated requests are already admitted work — pick
                    # the least-loaded routable survivor, bypassing the
                    # admission capacity check.
                    candidates = [
                        s for s in frontend.order
                        if frontend.slots[s].routable
                        and not workers[s].ejected
                        and not workers[s].crashed
                    ]
                    if not candidates:
                        record.outcome = "dropped"
                        result.dropped += 1
                        open_requests -= 1
                        journal.complete(request.index, "dropped")
                        continue
                    target = min(
                        candidates,
                        key=lambda s: len(frontend.slots[s].queue))
                    frontend.slots[target].queue.append(request)
                journal.assign(request.index, target)
                record.migrated = True
                result.migrated += 1
                dispatch(target)

        def scale_event(action: str, wid: str, depth: float) -> None:
            event = {
                "action": action, "worker": wid,
                "depth": round(depth, 4),
                "workers": frontend.routable_count,
                "time": clock.now,
            }
            result.scale_events.append(event)
            if self.tracer is not None:
                from repro.obs.events import ScaleEvent

                self.tracer.emit(ScaleEvent(
                    action=action, worker=wid, depth=event["depth"],
                    workers=event["workers"], time=clock.now))

        def complete_record(record: RequestRecord, cost: ServiceCost,
                            delay: float = 0.0) -> None:
            record.complete = clock.now + delay
            record.outcome = cost.outcome
            record.policy_ids = cost.policy_ids
            record.alerts = cost.alerts
            record.response_sha = cost.response_sha
            record.spec_commits = cost.spec_commits
            record.spec_rollbacks = cost.spec_rollbacks
            if self.tracer is not None:
                from repro.obs.events import ServeRequestEvent

                self.tracer.emit(ServeRequestEvent(
                    index=record.index, request_kind=record.kind,
                    worker=record.worker, outcome=record.outcome,
                    enqueue=record.enqueue, dispatch=record.dispatch,
                    complete=record.complete))

        def on_arrival(request: ServeRequest) -> None:
            nonlocal open_requests
            record = RequestRecord(
                index=request.index, session=request.session,
                kind=request.kind, enqueue=clock.now)
            records[request.index] = record
            result.records.append(record)
            shed_before = frontend.rejected
            wid = frontend.submit(request, key=request.affinity)
            if wid is None:
                if frontend.rejected > shed_before:
                    record.outcome = "rejected"
                    result.shed += 1
                else:
                    record.outcome = "dropped"
                    result.dropped += 1
                return
            journal.admit(request.index, wid)
            open_requests += 1
            dispatch(wid)

        def deliver_response(wid: str, request: ServeRequest,
                             cost: ServiceCost):
            """Ship the response frame over the (possibly chaotic) wire.

            Returns the backoff cycles the frontend spent retransmitting,
            or None when the ack was undeliverable within one retry
            budget — at-least-once transport's worst case, handled by
            re-executing the request (the journal still completes the
            id exactly once).
            """
            if chaos is None or not chaos.wire_active:
                return 0.0
            frame = TaggedMessage(
                payload=(cost.response_sha or cost.outcome).encode(),
                request_id=request.index & 0xFFFFFFFF,
                origin=f"worker:{wid}").to_bytes()
            base = wire_base.get(request.index, 0)
            try:
                _msg, backoff = frontend.receive_frame(
                    lambda attempt: chaos.transmit(
                        frame, request.index, base + attempt),
                    retry=wire_retry)
            except WireFormatError:
                wire_base[request.index] = base + wire_retry.limit + 1
                result.acks_lost += 1
                return None
            result.retransmit_cycles += backoff
            return backoff

        def on_complete(wid: str, request: ServeRequest,
                        cost: ServiceCost, incarnation: int) -> None:
            nonlocal open_requests
            worker = workers[wid]
            if incarnation != worker.incarnation:
                # A completion from a crashed incarnation: the work
                # died with the worker; recovery replays the request.
                result.stale_completions += 1
                return
            if clock.now < worker.stall_until:
                # Frozen mid-request: the completion thaws with the
                # worker (a zombie's late finish arrives here too).
                clock.schedule(worker.stall_until, "complete",
                               (wid, request, cost, incarnation))
                return
            worker.busy = False
            worker.inflight = None
            worker.busy_cycles += cost.cycles
            ack_delay = deliver_response(wid, request, cost)
            if ack_delay is None:
                # Undeliverable ack: re-execute on the same worker (or
                # let the replay complete it if this worker is gone).
                if not worker.ejected and not worker.crashed:
                    frontend.slots[wid].queue.insert(0, request)
                    dispatch(wid)
                return
            record = records[request.index]
            authoritative = journal.complete(request.index, cost.outcome)
            if authoritative:
                open_requests -= 1
                complete_record(record, cost, delay=ack_delay)
                if cost.outcome == "quarantined":
                    worker.evidence += 1
            if cost.fatal:
                eject(wid)
                return
            worker.served += 1
            if worker.ejected:
                return  # a zombie: declared dead and replaced already
            if protected and authoritative:
                worker.completed_mark = max(worker.completed_mark,
                                            request.index)
                worker.since_replicate += 1
                if (policy.replicate_every
                        and worker.since_replicate >= policy.replicate_every):
                    replicate(wid)
                    return
            if wid in migrating:
                try_migrate(wid)
                return
            dispatch(wid)
            finish_draining(wid)

        def replicate(wid: str) -> None:
            """Ship one checkpoint replica; the worker pays the window."""
            worker = workers[wid]
            worker.since_replicate = 0
            store.store(Replica(worker=wid, watermark=worker.completed_mark,
                                evidence=worker.evidence, time=clock.now))
            worker.available_at = clock.now + policy.replication_cycles
            clock.schedule(worker.available_at, "ready", wid)

        def eject(wid: str) -> None:
            nonlocal open_requests
            worker = workers[wid]
            worker.ejected = True
            orphans = frontend.eject(wid, "fatal request")
            scale_event("eject", wid,
                        autoscaler.smoothed if autoscaler else 0.0)
            for orphan in orphans:
                open_requests -= 1
                record = records[orphan.index]
                target = frontend.submit(orphan, key=orphan.affinity)
                if target is None:
                    record.outcome = "dropped"
                    result.dropped += 1
                    journal.complete(orphan.index, "dropped")
                    continue
                journal.assign(orphan.index, target)
                record.rerouted = True
                result.rerouted += 1
                open_requests += 1
                dispatch(target)

        def on_tick() -> None:
            assert autoscaler is not None
            queued = frontend.total_queued
            routable = frontend.routable_count
            action = autoscaler.observe(clock.now, queued, routable)
            result.depth_series.append({
                "time": clock.now,
                "queued": queued,
                "in_flight": sum(1 for w in workers.values() if w.busy),
                "routable_workers": routable,
                "smoothed": round(autoscaler.smoothed, 4),
            })
            if action == "scale_up":
                nonlocal next_worker
                wid = f"w{next_worker}"
                next_worker += 1
                frontend.add_worker(wid)
                worker = _SimWorker(
                    wid, spawned_at=clock.now,
                    available_at=clock.now + self.service.boot_cycles)
                workers[wid] = worker
                scale_event("scale_up", wid, autoscaler.smoothed)
                clock.schedule(worker.available_at, "ready", wid)
            elif action == "drain":
                victim = self._drain_victim(frontend, workers)
                if victim is not None:
                    frontend.drain(victim)
                    scale_event("drain", victim, autoscaler.smoothed)
                    if (self.migrate_on_drain
                            and frontend.routable_count >= 1):
                        migrating.add(victim)
                        try_migrate(victim)
                    else:
                        finish_draining(victim)
            if open_requests > 0 or clock:
                clock.schedule(clock.now + self.autoscaler_config.interval,
                               "tick")

        def on_chaos(event) -> None:
            worker = workers.get(event.worker)
            applied = (worker is not None and not worker.ejected
                       and not worker.crashed
                       and worker.retired_at is None)
            entry = {"time": clock.now, "kind": event.kind,
                     "worker": event.worker, "applied": applied}
            if event.kind == "stall":
                entry["duration"] = event.duration
            result.chaos_events.append(entry)
            if self.tracer is not None:
                from repro.obs.events import WorkerCrashEvent

                self.tracer.emit(WorkerCrashEvent(
                    fault=event.kind, worker=event.worker, time=clock.now,
                    duration=event.duration, applied=applied))
            if not applied:
                return
            if event.kind == "crash":
                # Fail-stop: silent death.  The frontend learns nothing
                # until the heartbeat detector's patience runs out.
                worker.crashed = True
                worker.crashed_at = clock.now
                worker.incarnation += 1
                clock.schedule(clock.now + policy.detection_cycles,
                               "detect", (event.worker, "crash", clock.now))
            else:
                worker.stall_until = clock.now + event.duration
                if not worker.busy:
                    clock.schedule(worker.stall_until, "ready", event.worker)
                if event.duration >= policy.detection_cycles:
                    # The freeze outlasts the detector: the worker will
                    # be declared dead while still (slowly) alive.
                    clock.schedule(clock.now + policy.detection_cycles,
                                   "detect",
                                   (event.worker, "stall", clock.now))

        def on_detect(wid: str, cause: str, failed_at: float) -> None:
            """The failure detector's verdict: eject, replace, replay."""
            nonlocal next_worker
            worker = workers[wid]
            if worker.ejected or worker.retired_at is not None:
                return
            if not (worker.crashed or worker.stall_until > clock.now):
                return  # heartbeats resumed before the verdict
            worker.ejected = True
            orphans = frontend.eject(wid, f"failure detector: {cause}")
            inflight = worker.inflight
            if inflight is not None:
                # Crash: the in-flight request died with the worker.
                # Stall: the zombie may yet finish it — replay anyway;
                # the journal suppresses whichever completion is second.
                orphans = [inflight] + orphans
                if worker.crashed:
                    worker.inflight = None
                    worker.busy = False
            scale_event("eject", wid,
                        autoscaler.smoothed if autoscaler else 0.0)
            # Spawn the replacement: boot a twin, rehydrate it from the
            # last replicated checkpoint (evidence and all).
            replica = store.latest(wid)
            new_wid = f"w{next_worker}"
            next_worker += 1
            delay = self.service.boot_cycles
            if replica is not None:
                delay += (policy.rehydrate_cycles
                          if policy.rehydrate_cycles is not None
                          else self.migration_cycles)
            frontend.add_worker(new_wid)
            replacement = _SimWorker(new_wid, spawned_at=clock.now,
                                     available_at=clock.now + delay)
            if replica is not None:
                replacement.evidence = replica.evidence
                replacement.completed_mark = replica.watermark
            workers[new_wid] = replacement
            scale_event("recover", new_wid,
                        autoscaler.smoothed if autoscaler else 0.0)
            # Replay exactly the journal's open set for the dead worker
            # — completed requests stay completed, nothing is re-run.
            open_ids = set(journal.open_for(wid))
            replay = [r for r in orphans if r.index in open_ids]
            journal.reassign([r.index for r in replay], new_wid)
            for request in replay:
                frontend.slots[new_wid].queue.append(request)
                records[request.index].rerouted = True
            result.replayed += len(replay)
            entry = {
                "worker": wid, "replacement": new_wid, "cause": cause,
                "failed_at": failed_at, "detected_at": clock.now,
                "recovered_at": replacement.available_at,
                "recovery_latency": replacement.available_at - failed_at,
                "watermark": (replica.watermark
                              if replica is not None else -1),
                "evidence": replica.evidence if replica is not None else 0,
                "replayed": len(replay),
            }
            result.recoveries.append(entry)
            if self.tracer is not None:
                from repro.obs.events import RecoveryEvent

                self.tracer.emit(RecoveryEvent(
                    worker=wid, replacement=new_wid, cause=cause,
                    failed_at=failed_at, detected_at=clock.now,
                    recovered_at=replacement.available_at,
                    watermark=entry["watermark"], replayed=len(replay)))
            clock.schedule(replacement.available_at, "ready", new_wid)

        while clock:
            kind, data = clock.pop()
            if kind == "arrival":
                on_arrival(data)
            elif kind == "complete":
                wid, request, cost, incarnation = data
                on_complete(wid, request, cost, incarnation)
            elif kind == "ready":
                dispatch(data)
                finish_draining(data)
            elif kind == "migrated":
                wid, moved = data
                on_migrated(wid, moved)
            elif kind == "chaos":
                on_chaos(data)
            elif kind == "detect":
                wid, cause, failed_at = data
                on_detect(wid, cause, failed_at)
            elif kind == "tick":
                # Drop trailing ticks once all work has finished.
                if open_requests > 0 or clock:
                    on_tick()
        return result

    @staticmethod
    def _drain_victim(frontend: FleetFrontend,
                      workers: Dict[str, _SimWorker]) -> Optional[str]:
        """Newest routable worker — scale-down unwinds LIFO."""
        for wid in reversed(frontend.order):
            if (frontend.slots[wid].routable and not workers[wid].ejected
                    and not workers[wid].crashed):
                return wid
        return None
