"""Event-driven serving: a simulated clock over real worker budgets.

The serving loop interleaves two event streams on one simulated clock:
open-loop *arrivals* from :mod:`repro.serve.loadgen`, and *completions*
from workers whose per-request cycle budgets are **measured, not
modelled**: every distinct payload is executed once, for real, on a
recover-mode worker Machine via :func:`repro.fleet.driver.run_worker`,
and the cycles it consumed (plus its security outcome — served,
quarantined, fatal) become the budget every simulated dispatch of that
payload replays.  The simulation is therefore wall-clock-free and
bit-reproducible, while its service times and its detection results
are the DIFT machine's own.

Requests queue at the frontend when every routable worker is busy —
each request records its enqueue / dispatch / complete stamps, and the
run emits p50/p95/p99 latency, a queue-depth time series, and the
autoscaler's worker-count trace.

For *real* (non-simulated) measurements there is a parallel
multiprocessing wall-clock mode in :mod:`repro.serve.wallclock`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.driver import FleetConfig, run_worker
from repro.fleet.frontend import FleetFrontend
from repro.serve.autoscaler import Autoscaler, AutoscalerConfig
from repro.serve.loadgen import ServeRequest

__all__ = [
    "RequestRecord",
    "ServeResult",
    "ServeSim",
    "ServiceCost",
    "ServiceModel",
    "SimClock",
    "percentile",
]


class SimClock:
    """A deterministic event queue over simulated cycles."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0

    def schedule(self, when: float, kind: str, data: object = None) -> None:
        """Enqueue an event; ties break by insertion order."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past "
                             f"({when} < {self.now})")
        heapq.heappush(self._heap, (when, self._seq, kind, data))
        self._seq += 1

    def pop(self) -> Tuple[str, object]:
        """Advance to and return the next event."""
        when, _seq, kind, data = heapq.heappop(self._heap)
        self.now = when
        return kind, data

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (0 for an empty sequence)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


# -- measured service model ---------------------------------------------


@dataclass(frozen=True)
class ServiceCost:
    """What one real execution of a payload cost and decided."""

    cycles: float  # marginal cycles beyond worker boot
    outcome: str  # 'served' | 'quarantined' | 'fatal' | 'noop'
    policy_ids: Tuple[str, ...] = ()
    alerts: int = 0
    response_sha: str = ""
    error: str = ""

    @property
    def fatal(self) -> bool:
        """True when the worker did not survive the request."""
        return self.outcome == "fatal"


class ServiceModel:
    """Per-payload cycle budgets measured on a real worker Machine.

    One instance is shared across every sweep point of a bench run, so
    each distinct payload is executed exactly once no matter how many
    thousands of simulated requests replay it.  ``boot_cycles`` — a
    worker Machine brought up with an empty queue — doubles as the
    autoscaler's spawn delay for new workers.

    A quarantined request's budget is approximated by the instructions
    it retired before the supervisor rolled it back (rollback restores
    the cycle counters, so the post-run counter alone would price an
    absorbed attack at zero).
    """

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        self._cache: Dict[Tuple[bytes, Optional[bytes]], ServiceCost] = {}
        self._boot: Optional[Dict] = None
        self._migration: Optional[Tuple[int, float]] = None

    def _boot_summary(self) -> Dict:
        if self._boot is None:
            summary, _machine = run_worker(self.config, "svc-boot", [])
            self._boot = summary
        return self._boot

    @property
    def boot_cycles(self) -> float:
        """Cycles to bring a worker up before it can serve (spawn cost)."""
        return float(self._boot_summary()["cycles"])

    @property
    def measured(self) -> int:
        """Distinct payloads executed so far."""
        return len(self._cache)

    def _measure_migration(self) -> Tuple[int, float]:
        """(blob bytes, cycles) to move one worker, from a real pack.

        Packs an actual booted worker via :mod:`repro.resil.migrate`
        and prices shipping the blob at network device rates — the same
        cost model every simulated byte already pays.
        """
        if self._migration is None:
            from repro.resil.migrate import pack_worker
            from repro.runtime.devices import DeviceCosts

            _summary, machine = run_worker(self.config, "svc-mig-probe", [])
            blob = pack_worker(machine)
            costs = DeviceCosts()
            self._migration = (
                len(blob), costs.net_base + len(blob) * costs.net_byte)
        return self._migration

    @property
    def migration_blob_bytes(self) -> int:
        """Measured wire size of one packed worker."""
        return self._measure_migration()[0]

    @property
    def migration_cycles(self) -> float:
        """Cycles to pack, ship and rehydrate one worker's state."""
        return self._measure_migration()[1]

    def cost(self, payload: bytes,
             tags: Optional[bytes] = None) -> ServiceCost:
        """The measured budget for one payload (cached)."""
        key = (bytes(payload), tags)
        entry = self._cache.get(key)
        if entry is None:
            entry = self._measure(key[0], tags)
            self._cache[key] = entry
        return entry

    def _measure(self, payload: bytes, tags: Optional[bytes]) -> ServiceCost:
        boot = self._boot_summary()
        summary, _machine = run_worker(self.config, "svc-probe",
                                       [(payload, tags)])
        cycles = max(1.0, float(summary["cycles"]) - float(boot["cycles"]))
        policy_ids = tuple(a["policy_id"] for a in summary["alerts"])
        response_sha = ""
        if summary["responses"]:
            response_sha = hashlib.sha256(
                summary["responses"][0]).hexdigest()
        if summary["error"] is not None:
            return ServiceCost(
                cycles=cycles, outcome="fatal", policy_ids=policy_ids,
                alerts=len(summary["alerts"]),
                error=summary["error"]["message"])
        if summary["quarantined"]:
            burned = 0.0
            if summary["incidents"]:
                burned = (summary["incidents"][0]["instruction_count"]
                          - boot["instructions"])
            return ServiceCost(
                cycles=max(cycles, float(burned), 1.0),
                outcome="quarantined", policy_ids=policy_ids,
                alerts=len(summary["alerts"]))
        outcome = "served" if summary["served"] else "noop"
        return ServiceCost(
            cycles=cycles, outcome=outcome, policy_ids=policy_ids,
            alerts=len(summary["alerts"]), response_sha=response_sha)

    def mean_cycles(self, payloads: Sequence[bytes]) -> float:
        """Mean measured budget over a payload set (capacity planning)."""
        if not payloads:
            return 0.0
        return sum(self.cost(p).cycles for p in payloads) / len(payloads)


# -- per-request bookkeeping --------------------------------------------


@dataclass
class RequestRecord:
    """Lifecycle stamps of one simulated request."""

    index: int
    session: int
    kind: str
    enqueue: float
    worker: str = ""
    dispatch: float = -1.0
    complete: float = -1.0
    service: float = 0.0
    outcome: str = "pending"
    policy_ids: Tuple[str, ...] = ()
    alerts: int = 0
    response_sha: str = ""
    rerouted: bool = False
    #: True when the request changed workers via live migration (its
    #: draining worker shipped it, still queued, inside the state blob).
    migrated: bool = False

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queueing included)."""
        return self.complete - self.enqueue

    @property
    def queue_wait(self) -> float:
        """Time spent waiting for a worker."""
        return self.dispatch - self.enqueue

    def to_dict(self) -> Dict:
        return {
            "index": self.index, "session": self.session,
            "kind": self.kind, "worker": self.worker,
            "enqueue": self.enqueue, "dispatch": self.dispatch,
            "complete": self.complete, "service": self.service,
            "outcome": self.outcome, "policy_ids": list(self.policy_ids),
            "alerts": self.alerts, "response_sha": self.response_sha,
            "rerouted": self.rerouted, "migrated": self.migrated,
        }


@dataclass
class _SimWorker:
    """Serving-loop state for one (simulated) worker."""

    worker_id: str
    spawned_at: float = 0.0
    available_at: float = 0.0  # boot finishes here
    busy: bool = False
    served: int = 0
    busy_cycles: float = 0.0
    retired_at: Optional[float] = None
    ejected: bool = False


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    records: List[RequestRecord]
    depth_series: List[Dict] = field(default_factory=list)
    scale_events: List[Dict] = field(default_factory=list)
    workers: Dict[str, _SimWorker] = field(default_factory=dict)
    dropped: int = 0
    rerouted: int = 0
    #: Requests moved to another worker by drain-via-migration.
    migrated: int = 0
    frontend: Optional[FleetFrontend] = None

    # -- outcome tallies -------------------------------------------------

    @property
    def served(self) -> int:
        return sum(1 for r in self.records if r.outcome == "served")

    @property
    def quarantined(self) -> int:
        return sum(1 for r in self.records if r.outcome == "quarantined")

    @property
    def false_alerts(self) -> int:
        """Alerts raised while handling clean traffic."""
        return sum(r.alerts for r in self.records if r.kind == "clean")

    def attack_detection(self) -> Dict:
        """Detection tally over non-clean requests."""
        attacks = [r for r in self.records if r.kind != "clean"]
        caught = [r for r in attacks
                  if r.outcome in ("quarantined", "fatal")]
        return {
            "attacks": len(attacks),
            "detected": len(caught),
            "detection_rate": (len(caught) / len(attacks)
                               if attacks else 1.0),
        }

    # -- latency / throughput --------------------------------------------

    def latencies(self, kinds: Optional[Sequence[str]] = None) -> List[float]:
        """Completed-request latencies (optionally filtered by kind)."""
        return [r.latency for r in self.records
                if r.complete >= 0.0
                and (kinds is None or r.kind in kinds)]

    def latency_percentiles(self) -> Dict[str, float]:
        lat = self.latencies()
        return {"p50": percentile(lat, 50.0),
                "p95": percentile(lat, 95.0),
                "p99": percentile(lat, 99.0),
                "mean": sum(lat) / len(lat) if lat else 0.0,
                "max": max(lat) if lat else 0.0}

    @property
    def makespan(self) -> float:
        """First arrival to last completion, in cycles."""
        if not self.records:
            return 0.0
        start = min(r.enqueue for r in self.records)
        end = max((r.complete for r in self.records if r.complete >= 0.0),
                  default=start)
        return end - start

    @property
    def throughput(self) -> float:
        """Served requests per 1e6 cycles of makespan."""
        span = self.makespan
        return self.served / (span / 1e6) if span else 0.0

    @property
    def peak_workers(self) -> int:
        """Most routable workers observed at any depth sample."""
        if not self.depth_series:
            return len([w for w in self.workers.values()
                        if w.retired_at is None and not w.ejected])
        return max(s["routable_workers"] for s in self.depth_series)

    @property
    def max_queue_depth(self) -> int:
        if not self.depth_series:
            return 0
        return max(s["queued"] for s in self.depth_series)

    def worker_trace(self) -> List[Tuple[float, int]]:
        """(time, routable workers) samples — the autoscaler's story."""
        return [(s["time"], s["routable_workers"])
                for s in self.depth_series]

    def utilization(self) -> Dict[str, float]:
        """Per-worker busy fraction over its in-rotation lifetime."""
        out: Dict[str, float] = {}
        span = self.makespan or 1.0
        for wid, worker in self.workers.items():
            end = worker.retired_at if worker.retired_at is not None \
                else (min(r.enqueue for r in self.records) + span
                      if self.records else worker.spawned_at)
            alive = max(end - worker.spawned_at, 1.0)
            out[wid] = min(worker.busy_cycles / alive, 1.0)
        return out

    # -- reproducibility -------------------------------------------------

    def digest(self) -> str:
        """Deterministic fingerprint of the run's observable outcome."""
        canonical = {
            "records": [r.to_dict() for r in self.records],
            "scale_events": self.scale_events,
            "dropped": self.dropped,
            "rerouted": self.rerouted,
            "migrated": self.migrated,
        }
        blob = json.dumps(canonical, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def metrics(self):
        """``serve.*`` instruments plus the frontend's routing counters."""
        from repro.fleet.observe import frontend_metrics
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        pcts = self.latency_percentiles()
        reg.counter("serve.requests", "open-loop arrivals").value = \
            len(self.records)
        reg.counter("serve.served", "requests answered").value = self.served
        reg.counter("serve.quarantined",
                    "attacks absorbed by rollback").value = self.quarantined
        reg.counter("serve.dropped",
                    "arrivals refused by backpressure").value = self.dropped
        reg.counter("serve.rerouted",
                    "requests re-routed after ejection").value = self.rerouted
        reg.counter("serve.migrated",
                    "requests moved by drain-via-migration").value = \
            self.migrated
        reg.counter("serve.migrations", "worker live migrations").value = sum(
            1 for e in self.scale_events if e["action"] == "migrate")
        reg.counter("serve.false_alerts",
                    "alerts on clean traffic").value = self.false_alerts
        for name, value in pcts.items():
            reg.gauge(f"serve.latency.{name}",
                      "arrival-to-completion latency (cycles)").set(
                round(value, 3))
        hist = reg.histogram("serve.latency", "per-request latency")
        for lat in self.latencies():
            hist.observe(lat)
        reg.gauge("serve.throughput",
                  "served requests per 1e6 cycles").set(
            round(self.throughput, 6))
        reg.gauge("serve.queue_depth.max",
                  "deepest sampled frontend queue").set(self.max_queue_depth)
        reg.gauge("serve.workers.peak",
                  "most routable workers at once").set(self.peak_workers)
        reg.counter("serve.scale_ups", "autoscaler spawns").value = sum(
            1 for e in self.scale_events if e["action"] == "scale_up")
        reg.counter("serve.drains", "autoscaler drains").value = sum(
            1 for e in self.scale_events if e["action"] == "drain")
        reg.counter("serve.retires", "drained workers removed").value = sum(
            1 for e in self.scale_events if e["action"] == "retire")
        if self.frontend is not None:
            frontend_metrics(self.frontend, reg)
        return reg

    def to_report(self) -> Dict:
        """JSON-ready summary (records elided to tallies)."""
        detection = self.attack_detection()
        return {
            "requests": len(self.records),
            "served": self.served,
            "quarantined": self.quarantined,
            "dropped": self.dropped,
            "rerouted": self.rerouted,
            "migrated": self.migrated,
            "false_alerts": self.false_alerts,
            "detection": detection,
            "latency": {k: round(v, 1)
                        for k, v in self.latency_percentiles().items()},
            "throughput": round(self.throughput, 3),
            "makespan": round(self.makespan, 1),
            "max_queue_depth": self.max_queue_depth,
            "peak_workers": self.peak_workers,
            "scale_events": self.scale_events,
            "digest": self.digest(),
        }


# -- the serving loop ----------------------------------------------------


class ServeSim:
    """Open-loop serving of a workload over measured worker budgets.

    Arrivals route through a :class:`FleetFrontend` (hash policy keyed
    by session affinity by default); busy workers queue requests at
    their slot; completions free the worker for the next queued
    request.  With an :class:`AutoscalerConfig` the worker set grows
    and shrinks at tick cadence: spawned workers pay the measured boot
    budget before their first dispatch, drained workers serve out their
    queue and retire.  A worker whose request comes back *fatal*
    (raise-mode alert or unrecoverable fault in the measurement) is
    ejected and its queue re-routes to the survivors.
    """

    def __init__(self, *, workers: int = 2, seed: int = 0,
                 routing: str = "hash",
                 queue_capacity: Optional[int] = None,
                 config: Optional[FleetConfig] = None,
                 service_model: Optional[ServiceModel] = None,
                 autoscaler: Optional[AutoscalerConfig] = None,
                 migrate_on_drain: bool = False,
                 migration_cycles: Optional[float] = None,
                 tracing: bool = False) -> None:
        if workers <= 0:
            raise ValueError("serving needs at least one worker")
        self.initial_workers = workers
        self.seed = seed
        self.routing = routing
        self.queue_capacity = queue_capacity
        self.service = service_model or ServiceModel(config)
        self.autoscaler_config = autoscaler
        #: Drain via live migration: a drained worker finishes its
        #: in-flight request (the pack point is a request boundary, as
        #: in repro.resil.migrate), then its queued requests ship to the
        #: survivors inside the state blob and it retires immediately —
        #: zero dropped, zero re-executed.  Plain drain instead serves
        #: out the whole queue before retiring.
        self.migrate_on_drain = migrate_on_drain
        #: Override for the measured pack+ship+rehydrate cost (None =
        #: price a real blob via ServiceModel.migration_cycles).
        self._migration_cycles = migration_cycles
        self.tracer = None
        if tracing:
            from repro.obs.tracer import Tracer

            self.tracer = Tracer()

    @property
    def migration_cycles(self) -> float:
        """Simulated cost of one worker migration."""
        if self._migration_cycles is not None:
            return self._migration_cycles
        return self.service.migration_cycles

    # -- event handlers --------------------------------------------------

    def run(self, workload: Sequence[ServeRequest]) -> ServeResult:
        """Serve one workload to completion; returns the full result."""
        clock = SimClock()
        frontend = FleetFrontend(
            [f"w{i}" for i in range(self.initial_workers)],
            policy=self.routing, seed=self.seed,
            queue_capacity=self.queue_capacity)
        workers: Dict[str, _SimWorker] = {
            wid: _SimWorker(wid) for wid in frontend.order
        }
        autoscaler = (Autoscaler(self.autoscaler_config)
                      if self.autoscaler_config is not None else None)
        result = ServeResult(records=[], workers=workers, frontend=frontend)
        records: Dict[int, RequestRecord] = {}
        open_requests = 0
        next_worker = self.initial_workers
        #: Workers waiting to migrate at their next request boundary.
        migrating: set = set()

        for request in workload:
            clock.schedule(request.arrival, "arrival", request)
        if autoscaler is not None and workload:
            clock.schedule(self.autoscaler_config.interval, "tick")

        def dispatch(wid: str) -> None:
            worker = workers[wid]
            slot = frontend.slots[wid]
            if worker.busy or not slot.queue or worker.ejected:
                return
            if clock.now < worker.available_at:
                return  # still booting; 'ready' event will retry
            request = slot.queue.pop(0)
            record = records[request.index]
            cost = self.service.cost(request.payload, request.tags)
            record.worker = wid
            record.dispatch = clock.now
            record.service = cost.cycles
            worker.busy = True
            clock.schedule(clock.now + cost.cycles, "complete",
                           (wid, request, cost))

        def finish_draining(wid: str) -> None:
            slot = frontend.slots[wid]
            worker = workers[wid]
            if slot.draining and not slot.queue and not worker.busy:
                frontend.retire(wid)
                worker.retired_at = clock.now
                scale_event("retire", wid,
                            autoscaler.smoothed if autoscaler else 0.0)

        def try_migrate(wid: str) -> None:
            """Pack and retire a draining worker at a request boundary.

            Waits for the in-flight request to finish (the pack point
            is the accept boundary, exactly where repro.resil takes its
            checkpoints); queued requests ship inside the blob and land
            on the survivors after the measured migration delay.
            """
            worker = workers[wid]
            if wid not in migrating or worker.busy:
                return
            migrating.discard(wid)
            slot = frontend.slots[wid]
            moved = list(slot.queue)
            slot.queue.clear()
            frontend.retire(wid)
            worker.retired_at = clock.now
            scale_event("migrate", wid,
                        autoscaler.smoothed if autoscaler else 0.0)
            if moved:
                clock.schedule(clock.now + self.migration_cycles,
                               "migrated", (wid, moved))

        def on_migrated(wid: str, moved: List[ServeRequest]) -> None:
            """The state blob landed: requeue its requests, never drop."""
            for request in moved:
                record = records[request.index]
                target = frontend.submit(request, key=request.affinity)
                if target is None:
                    # Migrated requests are already admitted work — pick
                    # the least-loaded routable survivor, bypassing the
                    # admission capacity check.
                    candidates = [
                        s for s in frontend.order
                        if frontend.slots[s].routable
                        and not workers[s].ejected
                    ]
                    if not candidates:
                        record.outcome = "dropped"
                        result.dropped += 1
                        continue
                    target = min(
                        candidates,
                        key=lambda s: len(frontend.slots[s].queue))
                    frontend.slots[target].queue.append(request)
                record.migrated = True
                result.migrated += 1
                dispatch(target)

        def scale_event(action: str, wid: str, depth: float) -> None:
            event = {
                "action": action, "worker": wid,
                "depth": round(depth, 4),
                "workers": frontend.routable_count,
                "time": clock.now,
            }
            result.scale_events.append(event)
            if self.tracer is not None:
                from repro.obs.events import ScaleEvent

                self.tracer.emit(ScaleEvent(
                    action=action, worker=wid, depth=event["depth"],
                    workers=event["workers"], time=clock.now))

        def complete_record(record: RequestRecord, cost: ServiceCost) -> None:
            record.complete = clock.now
            record.outcome = cost.outcome
            record.policy_ids = cost.policy_ids
            record.alerts = cost.alerts
            record.response_sha = cost.response_sha
            if self.tracer is not None:
                from repro.obs.events import ServeRequestEvent

                self.tracer.emit(ServeRequestEvent(
                    index=record.index, request_kind=record.kind,
                    worker=record.worker, outcome=record.outcome,
                    enqueue=record.enqueue, dispatch=record.dispatch,
                    complete=record.complete))

        def on_arrival(request: ServeRequest) -> None:
            nonlocal open_requests
            record = RequestRecord(
                index=request.index, session=request.session,
                kind=request.kind, enqueue=clock.now)
            records[request.index] = record
            result.records.append(record)
            wid = frontend.submit(request, key=request.affinity)
            if wid is None:
                record.outcome = "dropped"
                result.dropped += 1
                return
            open_requests += 1
            dispatch(wid)

        def on_complete(wid: str, request: ServeRequest,
                        cost: ServiceCost) -> None:
            nonlocal open_requests
            worker = workers[wid]
            worker.busy = False
            worker.busy_cycles += cost.cycles
            open_requests -= 1
            record = records[request.index]
            complete_record(record, cost)
            if cost.fatal:
                eject(wid)
                return
            worker.served += 1
            if wid in migrating:
                try_migrate(wid)
                return
            dispatch(wid)
            finish_draining(wid)

        def eject(wid: str) -> None:
            nonlocal open_requests
            worker = workers[wid]
            worker.ejected = True
            orphans = frontend.eject(wid, "fatal request")
            scale_event("eject", wid,
                        autoscaler.smoothed if autoscaler else 0.0)
            for orphan in orphans:
                open_requests -= 1
                record = records[orphan.index]
                target = frontend.submit(orphan, key=orphan.affinity)
                if target is None:
                    record.outcome = "dropped"
                    result.dropped += 1
                    continue
                record.rerouted = True
                result.rerouted += 1
                open_requests += 1
                dispatch(target)

        def on_tick() -> None:
            assert autoscaler is not None
            queued = frontend.total_queued
            routable = frontend.routable_count
            action = autoscaler.observe(clock.now, queued, routable)
            result.depth_series.append({
                "time": clock.now,
                "queued": queued,
                "in_flight": sum(1 for w in workers.values() if w.busy),
                "routable_workers": routable,
                "smoothed": round(autoscaler.smoothed, 4),
            })
            if action == "scale_up":
                nonlocal next_worker
                wid = f"w{next_worker}"
                next_worker += 1
                frontend.add_worker(wid)
                worker = _SimWorker(
                    wid, spawned_at=clock.now,
                    available_at=clock.now + self.service.boot_cycles)
                workers[wid] = worker
                scale_event("scale_up", wid, autoscaler.smoothed)
                clock.schedule(worker.available_at, "ready", wid)
            elif action == "drain":
                victim = self._drain_victim(frontend, workers)
                if victim is not None:
                    frontend.drain(victim)
                    scale_event("drain", victim, autoscaler.smoothed)
                    if (self.migrate_on_drain
                            and frontend.routable_count >= 1):
                        migrating.add(victim)
                        try_migrate(victim)
                    else:
                        finish_draining(victim)
            if open_requests > 0 or clock:
                clock.schedule(clock.now + self.autoscaler_config.interval,
                               "tick")

        while clock:
            kind, data = clock.pop()
            if kind == "arrival":
                on_arrival(data)
            elif kind == "complete":
                wid, request, cost = data
                on_complete(wid, request, cost)
            elif kind == "ready":
                dispatch(data)
                finish_draining(data)
            elif kind == "migrated":
                wid, moved = data
                on_migrated(wid, moved)
            elif kind == "tick":
                # Drop trailing ticks once all work has finished.
                if open_requests > 0 or clock:
                    on_tick()
        return result

    @staticmethod
    def _drain_victim(frontend: FleetFrontend,
                      workers: Dict[str, _SimWorker]) -> Optional[str]:
        """Newest routable worker — scale-down unwinds LIFO."""
        for wid in reversed(frontend.order):
            if frontend.slots[wid].routable and not workers[wid].ejected:
                return wid
        return None
