"""Queue-depth autoscaling: a deterministic control loop.

The controller watches one signal — queued requests per routable
worker, EWMA-smoothed so a single arrival burst doesn't thrash the
fleet — and makes one decision per tick:

* smoothed depth above ``high_water`` and head-room left: **scale up**
  (the serving loop spawns a recover-mode worker, which pays the
  measured machine boot budget before its first dispatch);
* smoothed depth below ``low_water`` and more than ``min_workers``
  routable: **drain** the newest worker — mark it unroutable in the
  frontend, let its queue empty, then retire it.  Drain needs no state
  migration: a worker that takes nothing new and finishes what it has
  leaves nothing behind.

A ``cooldown_ticks`` refractory period follows every action so the
controller observes the effect of one decision before making the next.
The controller is a pure function of the depth sequence it observes —
same workload, same seed, same decisions — which is what lets
servebench gate on a bit-identical rerun digest with autoscaling on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Autoscaler", "AutoscalerConfig"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop tuning for one serving run."""

    min_workers: int = 1
    max_workers: int = 8
    #: Scale up above this smoothed queued-per-routable-worker depth.
    high_water: float = 2.0
    #: Drain below this smoothed depth.
    low_water: float = 0.25
    #: EWMA smoothing factor (1.0 = no smoothing).
    alpha: float = 0.5
    #: Cycles between control ticks.
    interval: float = 40_000.0
    #: Ticks to wait after an action before acting again.
    cooldown_ticks: int = 2

    def __post_init__(self) -> None:
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.low_water >= self.high_water:
            raise ValueError("low_water must be below high_water")
        if self.interval <= 0:
            raise ValueError("tick interval must be positive")


class Autoscaler:
    """EWMA queue-depth controller; one optional action per tick."""

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config or AutoscalerConfig()
        self.smoothed = 0.0
        self.ticks = 0
        self._cooldown = 0
        #: (time, smoothed depth, routable workers, action) per tick.
        self.decisions: List[dict] = []

    def observe(self, now: float, queued: int,
                routable: int) -> Optional[str]:
        """Feed one depth sample; returns 'scale_up', 'drain' or None."""
        config = self.config
        per_worker = queued / max(routable, 1)
        self.smoothed = (config.alpha * per_worker
                         + (1.0 - config.alpha) * self.smoothed)
        self.ticks += 1
        action: Optional[str] = None
        if self._cooldown > 0:
            self._cooldown -= 1
        elif (self.smoothed > config.high_water
                and routable < config.max_workers):
            action = "scale_up"
            self._cooldown = config.cooldown_ticks
        elif (self.smoothed < config.low_water
                and routable > config.min_workers):
            action = "drain"
            self._cooldown = config.cooldown_ticks
        self.decisions.append({
            "time": now,
            "queued": queued,
            "routable": routable,
            "smoothed": round(self.smoothed, 4),
            "action": action,
        })
        return action
