"""Itanium-style virtual addressing and tag-space translation.

The 64-bit virtual address space is split into eight regions selected by
the top three address bits.  Within a region only ``IMPL_BITS`` low bits
are *implemented*; the bits between ``IMPL_BITS`` and the region number
are "unimplemented bits" and must be zero, creating holes in the address
space (paper section 4.1).

Because of those holes the tag (taint bitmap) address cannot be obtained
with a single shift as on x86.  Following the paper's Figure 4, the
region number is moved down next to the implemented bits to form a
*linearised* address, which is then shifted by the tracking granularity
and rebased into region 0 (the tag space, reserved for IA-32 and reused
by SHIFT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Implemented virtual-address bits per region (Itanium 2 implements 50;
#: we use 51 to keep the linearised space comfortably inside region 0).
IMPL_BITS = 51
REGION_SHIFT = 61
NUM_REGIONS = 8
IMPL_MASK = (1 << IMPL_BITS) - 1
ADDRESS_MASK = (1 << 64) - 1

#: Conventional region assignments used by the loader.
REGION_TAG = 0  # taint bitmap (tag space)
REGION_CODE = 1  # synthetic code addresses (for GOT/function pointers)
REGION_DATA = 2  # globals + heap
REGION_STACK = 3  # stacks


def region_of(addr: int) -> int:
    """Region number (top three bits) of a virtual address."""
    return (addr >> REGION_SHIFT) & 0x7


def offset_of(addr: int) -> int:
    """Implemented offset of a virtual address within its region."""
    return addr & IMPL_MASK


def make_address(region: int, offset: int) -> int:
    """Compose a virtual address from a region number and an offset."""
    if not 0 <= region < NUM_REGIONS:
        raise ValueError(f"region {region} out of range")
    if offset & ~IMPL_MASK:
        raise ValueError(f"offset {offset:#x} exceeds implemented bits")
    return (region << REGION_SHIFT) | offset


def is_implemented(addr: int) -> bool:
    """True iff the address has no unimplemented bits set."""
    addr &= ADDRESS_MASK
    middle = addr & ~((0x7 << REGION_SHIFT) | IMPL_MASK) & ADDRESS_MASK
    return middle == 0


def linearize(addr: int) -> int:
    """Move the region number down next to the implemented bits.

    This is the host-side reference for the instruction sequence the
    SHIFT compiler emits (shr / and / shl / or).
    """
    return (region_of(addr) << IMPL_BITS) | offset_of(addr)


@dataclass(frozen=True)
class TagAddress:
    """Location of one taint tag.

    Both granularities store their tags at tag byte ``lin >> 3``:

    * **byte-level** (granularity 1): one tag *bit* per data byte — the
      tag byte holds eight bits, ``bit`` selects the one for this byte;
    * **word-level** (granularity 8): one tag *byte* per 8-byte word —
      the whole tag byte is a boolean (``bit`` is None).

    Either way the bitmap occupies 1/8th of the data footprint, but the
    byte-level encoding needs mask construction and a read-modify-write
    per access, which is why the paper finds byte-level tracking needs
    "a bit more code to instrument a single instruction".
    """

    byte_addr: int
    bit: Optional[int]

    @property
    def mask(self) -> int:
        """Bit mask within the tag byte (0xFF at word level)."""
        return 0xFF if self.bit is None else 1 << self.bit


def tag_address(addr: int, granularity: int, flat: bool = False) -> TagAddress:
    """Translate a data address to its taint-tag location (Fig. 4).

    ``flat=True`` models the x86-style translation ablation: region bits
    are masked away rather than moved down, so all regions alias one tag
    space (fine for the performance study; not used for protection).
    """
    if granularity not in (1, 8):
        raise ValueError("granularity must be 1 (byte) or 8 (word)")
    lin = (addr & IMPL_MASK) if flat else linearize(addr)
    if granularity == 1:
        return TagAddress(byte_addr=lin >> 3, bit=lin & 0x7)
    return TagAddress(byte_addr=lin >> 3, bit=None)


def tag_space_limit(granularity: int) -> int:
    """One past the highest tag byte address the bitmap can use."""
    total_lin = NUM_REGIONS << IMPL_BITS
    return total_lin >> 3
