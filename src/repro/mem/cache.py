"""Set-associative cache timing model.

Only timing is modelled (no data live in the caches); the executor asks
the hierarchy how many *stall* cycles an access costs beyond the base
instruction latency.  Defaults approximate an Itanium 2: 16 KB 4-way L1D,
256 KB 8-way L2, with the paper-relevant property that most taint-bitmap
accesses hit in L1 (paper section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class CacheConfig:
    """Geometry of one cache level."""
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_extra_cycles: int = 0  # extra cycles charged on hit at this level

    @property
    def num_sets(self) -> int:
        """Number of sets (must be a power of two)."""
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("cache sets must be a positive power of two")
        return sets


@dataclass
class CacheStats:
    """Access/miss counters of one cache level."""
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Accesses minus misses."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses over accesses."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One cache level with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        #: Indices of sets holding at least one line.  Occupancy is
        #: monotone under access() (LRU eviction replaces, never
        #: empties), so this only grows — checkpoint capture iterates
        #: it instead of scanning every (mostly empty) set.
        self._occupied: set = set()

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; returns True on hit."""
        line = addr >> self._line_shift
        index = line & self._set_mask
        ways = self._sets[index]
        self.stats.accesses += 1
        try:
            ways.remove(line)
        except ValueError:
            self.stats.misses += 1
            if not ways:
                self._occupied.add(index)
            elif len(ways) >= self.config.ways:
                ways.pop(0)
            ways.append(line)
            return False
        ways.append(line)
        return True

    def reset_stats(self) -> None:
        """Zero the counters (keep contents)."""
        self.stats = CacheStats()


@dataclass
class HierarchyConfig:
    """Itanium-2-shaped three-level data hierarchy (the rx1620 testbed
    pairs a small L1/L2 with a multi-megabyte L3)."""

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(16 * 1024, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 8))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(3 * 1024 * 1024, 12))
    l2_latency: int = 10  # stall cycles on L1 miss / L2 hit
    l3_latency: int = 20  # stall cycles on L2 miss / L3 hit
    memory_latency: int = 140  # stall cycles on L3 miss


class CacheHierarchy:
    """Three-level data-cache hierarchy returning stall cycles per access."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)

    def access(self, addr: int, size: int = 1) -> int:
        """Stall cycles for an access (0 on an L1 hit)."""
        if self.l1.access(addr):
            return self.config.l1.hit_extra_cycles
        if self.l2.access(addr):
            return self.config.l2_latency
        if self.l3.access(addr):
            return self.config.l3_latency
        return self.config.memory_latency

    def reset_stats(self) -> None:
        """Zero every level's counters."""
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.l3.reset_stats()
