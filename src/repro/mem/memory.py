"""Sparse paged guest memory.

Pages are allocated lazily on first touch, so the huge region-based
address space (including the region-0 tag bitmap) costs host memory only
for the pages actually used.  All accesses are little-endian.

The scalar ``load``/``store`` entry points are on the interpreter's
hottest path (every guest ``ldN``/``stN`` lands here), so they carry a
fast path for accesses that stay inside one page: a one-entry page
cache skips the dict lookup when consecutive accesses touch the same
page (the overwhelmingly common case: stack frames and tag-bitmap
bytes), and the value is packed/unpacked in place with ``struct``
instead of round-tripping through an intermediate ``bytes`` object.

Dirty-page tracking (repro.resil copy-on-write checkpoints): every
mutation — scalar stores from either execution engine, range writes
from the libc fast paths, ``TaintMap`` tag updates, wire-taint imports
— funnels through :meth:`store` or :meth:`write_bytes`, which record
the touched page number in a dirty set.  Loads allocate pages lazily
but never dirty them (a lazily-allocated page is all zeros, i.e.
content-identical to never having existed).  A checkpoint drains the
set with :meth:`begin_epoch`, so a per-request delta captures exactly
the pages written since the last checkpoint; the epoch token lets a
restore prove the live dirty set is relative to *that* checkpoint and
roll back in O(touched) instead of O(state).  The per-store cost is
one integer compare (a one-entry "last dirtied page" cache absorbs
consecutive stores to the same page).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Set, Tuple

from repro.mem.address import ADDRESS_MASK, IMPL_MASK, REGION_SHIFT, is_implemented

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1

#: Address bits that must be zero (the "unimplemented" hole between the
#: implemented offset and the region number; see repro.mem.address).
_UNIMPL_MASK = ADDRESS_MASK & ~((0x7 << REGION_SHIFT) | IMPL_MASK)

#: Little-endian scalar codecs for the power-of-two access sizes.  A 4 KiB
#: page is entirely implemented or entirely not, so any access that stays
#: within one implemented page needs no per-byte address checking.
_SCALAR = {
    2: struct.Struct("<H"),
    4: struct.Struct("<I"),
    8: struct.Struct("<Q"),
}


class MemoryError_(Exception):
    """Guest-visible memory error (unimplemented address)."""

    def __init__(self, addr: int, reason: str) -> None:
        super().__init__(f"address {addr:#018x}: {reason}")
        self.addr = addr
        self.reason = reason


class SparseMemory:
    """Byte-addressable sparse memory over the 64-bit guest space."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        # One-entry page cache.  Pages are never freed, so a cached
        # reference can never go stale.
        self._cached_pno = -1
        self._cached_page: bytearray = b""  # type: ignore[assignment]
        #: Pages written since the last :meth:`begin_epoch` (the COW
        #: checkpoint working set).  ``_dirty_last`` is a one-entry
        #: cache so a run of stores to one page costs one compare.
        self._dirty: Set[int] = set()
        self._dirty_last = -1
        #: Token naming the checkpoint the dirty set is relative to.
        self.dirty_epoch = 0
        self._epoch_counter = 0

    def _page_for(self, addr: int) -> Tuple[bytearray, int]:
        pno = addr >> PAGE_BITS
        if pno == self._cached_pno:
            return self._cached_page, addr & PAGE_MASK
        page = self._pages.get(pno)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[pno] = page
        self._cached_pno = pno
        self._cached_page = page
        return page, addr & PAGE_MASK

    def check(self, addr: int, size: int = 1) -> None:
        """Raise unless ``[addr, addr+size)`` lies in implemented space."""
        addr &= ADDRESS_MASK
        if not is_implemented(addr) or not is_implemented(addr + size - 1):
            raise MemoryError_(addr, "unimplemented address bits set")

    def load(self, addr: int, size: int) -> int:
        """Load a little-endian unsigned integer of ``size`` bytes."""
        addr &= ADDRESS_MASK
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE and not addr & _UNIMPL_MASK:
            pno = addr >> PAGE_BITS
            if pno == self._cached_pno:
                page = self._cached_page
            else:
                page = self._pages.get(pno)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self._pages[pno] = page
                self._cached_pno = pno
                self._cached_page = page
            if size == 1:
                return page[off]
            codec = _SCALAR.get(size)
            if codec is not None:
                return codec.unpack_from(page, off)[0]
        self.check(addr, size)
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def store(self, addr: int, size: int, value: int) -> None:
        """Store the low ``size`` bytes of ``value`` little-endian."""
        addr &= ADDRESS_MASK
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE and not addr & _UNIMPL_MASK:
            pno = addr >> PAGE_BITS
            if pno != self._dirty_last:
                self._dirty.add(pno)
                self._dirty_last = pno
            if pno == self._cached_pno:
                page = self._cached_page
            else:
                page = self._pages.get(pno)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self._pages[pno] = page
                self._cached_pno = pno
                self._cached_page = page
            if size == 1:
                page[off] = value & 0xFF
                return
            codec = _SCALAR.get(size)
            if codec is not None:
                codec.pack_into(page, off, value & ((1 << (8 * size)) - 1))
                return
        self.check(addr, size)
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read a byte range (crossing pages as needed)."""
        addr &= ADDRESS_MASK
        out = bytearray()
        while size > 0:
            page, off = self._page_for(addr)
            chunk = min(size, PAGE_SIZE - off)
            out += page[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write a byte range (crossing pages as needed)."""
        addr &= ADDRESS_MASK
        pos = 0
        while pos < len(data):
            pno = (addr + pos) >> PAGE_BITS
            if pno != self._dirty_last:
                self._dirty.add(pno)
                self._dirty_last = pno
            page, off = self._page_for(addr + pos)
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            page[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (without the NUL).

        Scans whole page slices for the terminator (``bytearray.find``)
        instead of issuing one checked scalar load per character.
        """
        out = bytearray()
        pos = addr & ADDRESS_MASK
        while len(out) < limit:
            self.check(pos, 1)
            page, off = self._page_for(pos)
            end = min(PAGE_SIZE, off + (limit - len(out)))
            nul = page.find(0, off, end)
            if nul >= 0:
                out += page[off:nul]
                return bytes(out)
            out += page[off:end]
            pos += end - off
        raise MemoryError_(addr, "unterminated string")

    def pages_touched(self) -> int:
        """Number of pages allocated so far."""
        return len(self._pages)

    def iter_pages(self) -> Iterator[Tuple[int, bytearray]]:
        """Iterate (page-number, bytearray) pairs."""
        return iter(self._pages.items())

    # -- dirty-page epochs (repro.resil delta checkpoints) ------------

    def dirty_pages(self) -> Set[int]:
        """Page numbers written since the last :meth:`begin_epoch`.

        The returned set is live — callers that need a stable snapshot
        must copy it before the next store.
        """
        return self._dirty

    def dirty_count(self) -> int:
        """Number of distinct pages written this epoch."""
        return len(self._dirty)

    def begin_epoch(self) -> int:
        """Drain the dirty set and open a new epoch.

        Returns a fresh token naming the epoch.  A delta checkpoint
        captures the drained set and remembers the token; at restore
        time a matching ``dirty_epoch`` proves the live dirty set lists
        exactly the pages that diverged from that checkpoint.
        """
        self._dirty.clear()
        self._dirty_last = -1
        self._epoch_counter += 1
        self.dirty_epoch = self._epoch_counter
        return self.dirty_epoch

    def rebind_epoch(self, epoch: int) -> None:
        """Reset the dirty set as of a restored checkpoint's epoch.

        Called after an in-place restore: memory now matches the
        checkpoint that owns ``epoch``, so the dirty set restarts empty
        relative to it (repeat rollbacks to the same checkpoint stay
        O(touched)).
        """
        self._dirty.clear()
        self._dirty_last = -1
        self.dirty_epoch = epoch
        # Keep the counter monotonic past any adopted token so future
        # epochs never collide with one carried in by a migrated
        # checkpoint chain (tokens are compared only for equality).
        if epoch > self._epoch_counter:
            self._epoch_counter = epoch

    def readopt_epoch(self, epoch: int, pages) -> None:
        """Re-adopt an older epoch, unioning ``pages`` into the dirty set.

        The speculation subsystem (repro.spec) opens a private epoch for
        its entry checkpoint; on commit or rollback it hands epoch
        continuity back to the enclosing resilience chain by declaring
        "everything dirtied since *your* checkpoint is what I captured
        (``pages``) plus whatever is dirty now".  Unlike
        :meth:`rebind_epoch`, the current dirty set is kept, so the
        parent's next delta capture still sees every page written since
        the parent was taken.
        """
        self._dirty.update(pages)
        self._dirty_last = -1
        self.dirty_epoch = epoch
        if epoch > self._epoch_counter:
            self._epoch_counter = epoch
