"""Sparse paged guest memory.

Pages are allocated lazily on first touch, so the huge region-based
address space (including the region-0 tag bitmap) costs host memory only
for the pages actually used.  All accesses are little-endian.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.mem.address import ADDRESS_MASK, is_implemented

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MemoryError_(Exception):
    """Guest-visible memory error (unimplemented address)."""

    def __init__(self, addr: int, reason: str) -> None:
        super().__init__(f"address {addr:#018x}: {reason}")
        self.addr = addr
        self.reason = reason


class SparseMemory:
    """Byte-addressable sparse memory over the 64-bit guest space."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page_for(self, addr: int) -> Tuple[bytearray, int]:
        page = self._pages.get(addr >> PAGE_BITS)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[addr >> PAGE_BITS] = page
        return page, addr & PAGE_MASK

    def check(self, addr: int, size: int = 1) -> None:
        """Raise unless ``[addr, addr+size)`` lies in implemented space."""
        addr &= ADDRESS_MASK
        if not is_implemented(addr) or not is_implemented(addr + size - 1):
            raise MemoryError_(addr, "unimplemented address bits set")

    def load(self, addr: int, size: int) -> int:
        """Load a little-endian unsigned integer of ``size`` bytes."""
        self.check(addr, size)
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def store(self, addr: int, size: int, value: int) -> None:
        """Store the low ``size`` bytes of ``value`` little-endian."""
        self.check(addr, size)
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read a byte range (crossing pages as needed)."""
        addr &= ADDRESS_MASK
        out = bytearray()
        while size > 0:
            page, off = self._page_for(addr)
            chunk = min(size, PAGE_SIZE - off)
            out += page[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write a byte range (crossing pages as needed)."""
        addr &= ADDRESS_MASK
        pos = 0
        while pos < len(data):
            page, off = self._page_for(addr + pos)
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            page[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string (without the NUL)."""
        out = bytearray()
        while len(out) < limit:
            byte = self.load(addr + len(out), 1)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemoryError_(addr, "unterminated string")

    def pages_touched(self) -> int:
        """Number of pages allocated so far."""
        return len(self._pages)

    def iter_pages(self) -> Iterator[Tuple[int, bytearray]]:
        """Iterate (page-number, bytearray) pairs."""
        return iter(self._pages.items())
