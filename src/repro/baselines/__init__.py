"""Comparison baselines: LIFT-style DBT tracking and emulation models."""

from repro.baselines.interp import InterpreterModel
from repro.baselines.lift import LiftInstrumenter, LiftOptions, lift_instrument_function

__all__ = [
    "InterpreterModel",
    "LiftInstrumenter",
    "LiftOptions",
    "lift_instrument_function",
]

#: Convenience ShiftOptions value selecting LIFT-mode compilation.
from repro.compiler.instrument import ShiftOptions

LIFT_MODE = ShiftOptions(mode="lift")
