"""LIFT-style software-only DIFT baseline (paper section 7.1).

LIFT is a dynamic-binary-translation taint tracker for x86-64 that the
paper compares against (4.6X slowdown on SPEC-INT2000 vs SHIFT's 2.81X).
Unlike SHIFT, LIFT has no hardware help for register tags: every
data-flow ALU instruction needs software tag propagation in shadow
registers, loads/stores consult a shadow map, and compares/branches need
explicit tag checks.

We model LIFT as an alternative instrumentation pass over the same
generated code.  The inserted instructions are *semantics-neutral* (they
only touch instrumentation scratch registers and the unused-in-this-mode
tag space), so guest behaviour is identical while the cost structure —
per-ALU shadow ORs, per-memory-access shadow-map traffic, per-branch
translation overhead — matches a DBT tracker.  LIFT-mode programs do
not detect attacks; the baseline exists for the performance comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.compiler.codegen import FunctionCode
from repro.isa.instruction import Instruction, Label, OpKind, ROLE_LIFT
from repro.isa.operands import GR, PR, R0
from repro.mem.address import IMPL_MASK

# Shadow scratch (the instrumentation-reserved registers).
S_A = GR(2)
S_B = GR(3)
S_T = GR(9)
S_U = GR(10)

_MEM_LOADS = {"ld1", "ld2", "ld4", "ld8"}
_MEM_STORES = {"st1", "st2", "st4", "st8"}

Item = Union[Label, Instruction]


@dataclass(frozen=True)
class LiftOptions:
    """Cost knobs for the LIFT model."""

    #: shadow-tag combine operations per user ALU instruction (x86-64
    #: is register starved: tags spill into memory-resident shadow state)
    alu_tag_ops: int = 3
    #: extra check instructions per compare/branch (fast-path check)
    cmp_check_ops: int = 3
    #: DBT translation overhead per taken branch (code-cache hash lookup
    #: and dispatch in the translated-code cache)
    branch_overhead_ops: int = 5

    @property
    def label(self) -> str:
        """Display name used by the harness."""
        return "lift"


class LiftInstrumenter:
    """Applies the LIFT cost model to one function's code."""

    def __init__(self, options: LiftOptions | None = None) -> None:
        self.options = options or LiftOptions()

    def instrument(self, func: FunctionCode) -> FunctionCode:
        """Rewrite one function with LIFT-style shadow operations."""
        out: List[Item] = []
        for item in func.items:
            if isinstance(item, Label):
                out.append(item)
                continue
            self._rewrite(item, out)
        return FunctionCode(name=func.name, items=out,
                            frame_size=func.frame_size, makes_calls=func.makes_calls)

    def _rewrite(self, instr: Instruction, out: List[Item]) -> None:
        if instr.role is not None:
            out.append(instr)
            return

        def emit(op: str, **kwargs) -> None:
            out.append(Instruction(op, role=ROLE_LIFT, origin=kwargs.pop("origin", "alu"), **kwargs))

        kind = instr.kind
        if instr.op in _MEM_LOADS:
            # Shadow-map lookup: address translation + shadow load + merge.
            addr = instr.ins[0]
            out.append(instr)
            emit("movl", origin="load", outs=(S_A,), imm=IMPL_MASK)
            emit("and", origin="load", outs=(S_A,), ins=(addr, S_A))
            emit("shr.u", origin="load", outs=(S_A,), ins=(S_A,), imm=3)
            emit("ld1", origin="load", outs=(S_T,), ins=(S_A,))
            emit("and", origin="load", outs=(S_T,), ins=(S_T,), imm=0xff)
            emit("or", origin="load", outs=(S_T,), ins=(S_T, S_U))
            emit("or", origin="load", outs=(S_U,), ins=(S_U, S_T))
            return
        if instr.op in _MEM_STORES:
            addr = instr.ins[0]
            out.append(instr)
            emit("movl", origin="store", outs=(S_A,), imm=IMPL_MASK)
            emit("and", origin="store", outs=(S_A,), ins=(addr, S_A))
            emit("shr.u", origin="store", outs=(S_A,), ins=(S_A,), imm=3)
            emit("or", origin="store", outs=(S_T,), ins=(S_T, S_U))
            emit("st1", origin="store", ins=(S_A, S_T))
            return
        if kind is OpKind.ALU and instr.op not in ("movl",):
            out.append(instr)
            for _ in range(self.options.alu_tag_ops):
                emit("or", outs=(S_T,), ins=(S_T, S_U))
            return
        if kind is OpKind.CMP:
            for _ in range(self.options.cmp_check_ops):
                emit("cmp.eq", origin="cmp", outs=(PR(8), PR(9)), ins=(S_T, R0))
            out.append(instr)
            return
        if kind is OpKind.BRANCH:
            for _ in range(self.options.branch_overhead_ops):
                emit("add", origin="branch", outs=(S_U,), ins=(S_U, S_T))
            out.append(instr)
            return
        out.append(instr)


def lift_instrument_function(func: FunctionCode,
                             options: LiftOptions | None = None) -> FunctionCode:
    """Apply the LIFT baseline model to one function."""
    return LiftInstrumenter(options).instrument(func)
