"""Interpretation/emulation-based DIFT cost model (paper section 7.1).

Systems such as TaintCheck run the protected binary under an emulator
that decodes and dispatches every instruction in software; the paper
notes their overhead "can be quite significant" (LIFT cites 27.6X for
its own unoptimised starting point, and the related-work range runs up
to 37X).  Fully interpreting a guest inside our simulator would just
multiply simulation time, so this baseline is an analytic model applied
to measured baseline counters: every instruction pays a decode/dispatch
cost and memory operations pay an additional shadow-map cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.perf import PerfCounters


@dataclass(frozen=True)
class InterpreterModel:
    """Cost parameters of an emulation-based taint tracker."""

    #: cycles to fetch/decode/dispatch one guest instruction in software
    dispatch_cycles: float = 18.0
    #: extra cycles per guest load/store for shadow-memory maintenance
    mem_extra_cycles: float = 14.0
    #: extra cycles per taken branch (interpreter loop redirect)
    branch_extra_cycles: float = 6.0

    label: str = "interpreter"

    def estimate_cycles(self, baseline: PerfCounters) -> float:
        """Predicted cycles for running the measured workload emulated.

        Device time (``io_cycles``) is unchanged: I/O costs the same no
        matter how the CPU work is executed.
        """
        compute = (
            baseline.instructions * self.dispatch_cycles
            + (baseline.loads + baseline.stores) * self.mem_extra_cycles
            + baseline.branches_taken * self.branch_extra_cycles
            + baseline.stall_cycles  # cache behaviour carries over
        )
        return compute + baseline.io_cycles

    def slowdown(self, baseline: PerfCounters) -> float:
        """Predicted slowdown relative to native execution."""
        native = baseline.cycles
        if native == 0:
            return 1.0
        return self.estimate_cycles(baseline) / native
