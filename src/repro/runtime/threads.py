"""Multi-threaded guests: the paper's stated future work (section 4.4).

The paper's prototype "does not support multi-threaded applications
since accessing the bitmap is not serialized".  This module adds
threading to the reproduction so that limitation can be studied:

* a round-robin scheduler time-slices one simulated core between guest
  threads (quantum in instructions, a fixed context-switch cost);
* ``thread_create`` / ``thread_join`` / ``thread_yield`` and a mutex
  family are exposed to MiniC as natives;
* each thread gets its own architectural context — including its NaT
  bits, so register taint is per-thread exactly as hardware would keep
  it — while memory, the taint bitmap and the caches are shared;
* by default the scheduler may preempt *inside* an instrumentation
  sequence, reproducing the unserialized-bitmap race the paper warns
  about (a byte-level tag read-modify-write torn by a sibling thread
  can lose a taint bit).  ``serialize_bitmap=True`` defers preemption
  to instrumentation-sequence boundaries, modelling the serialized
  bitmap access the paper leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cpu.core import CPU, CpuContext, code_index
from repro.cpu.faults import RunawayError
from repro.isa.operands import GR_FIRST_ARG, GR_RET
from repro.mem.address import REGION_STACK, make_address

#: Stack placement: each thread's stack top, 1 MiB apart.
_STACK_SPACING = 1 << 20
_MAIN_STACK_OFFSET = 1 << 30


def thread_stack_top(tid: int) -> int:
    """Initial stack pointer for a thread id."""
    return make_address(REGION_STACK, _MAIN_STACK_OFFSET - tid * _STACK_SPACING)


@dataclass
class GuestThread:
    """Scheduler bookkeeping for one guest thread."""
    tid: int
    context: Optional[CpuContext]  # None while running on the core
    status: str = "ready"  # ready | running | blocked | done
    exit_value: int = 0
    join_waiters: List[int] = field(default_factory=list)


@dataclass
class Mutex:
    """A guest mutex: holder plus FIFO waiters."""
    holder: Optional[int] = None  # tid
    waiters: List[int] = field(default_factory=list)


class DeadlockError(RuntimeError):
    """Every live thread is blocked."""


class ThreadManager:
    """Round-robin scheduler over one simulated core."""

    def __init__(self, machine, *, quantum: int = 800,
                 switch_cost: float = 250.0,
                 serialize_bitmap: bool = False) -> None:
        self.machine = machine
        self.cpu: CPU = machine.cpu
        self.quantum = quantum
        self.switch_cost = switch_cost
        self.serialize_bitmap = serialize_bitmap
        self.threads: Dict[int, GuestThread] = {
            0: GuestThread(tid=0, context=None, status="running")
        }
        self.current_tid = 0
        self._next_tid = 1
        self.mutexes: Dict[int, Mutex] = {}
        self._next_mutex = 1
        self.context_switches = 0

    # -- thread lifecycle -------------------------------------------------

    @property
    def current(self) -> GuestThread:
        """The thread owning the core right now."""
        return self.threads[self.current_tid]

    def spawn(self, func_addr: int, arg: int) -> int:
        """Create a thread running ``func(arg)``; returns its tid."""
        tid = self._next_tid
        self._next_tid += 1
        entry = code_index(func_addr)
        if not 0 <= entry < len(self.machine.program.code):
            raise ValueError(f"thread entry {func_addr:#x} is not code")
        context = self._fresh_context(entry, arg, tid)
        self.threads[tid] = GuestThread(tid=tid, context=context)
        return tid

    def _fresh_context(self, entry: int, arg: int, tid: int) -> CpuContext:
        from repro.cpu.core import code_address
        from repro.isa.operands import GR_SP

        gr = [0] * len(self.cpu.gr)
        nat = [False] * len(self.cpu.nat)
        pr = [False] * len(self.cpu.pr)
        pr[0] = True
        br = [0] * len(self.cpu.br)
        gr[GR_SP] = thread_stack_top(tid)
        gr[GR_FIRST_ARG] = arg
        # Keep the current NaT source alive for 'global' natgen builds.
        gr[31] = self.cpu.gr[31]
        nat[31] = self.cpu.nat[31]
        # Returning from the thread function lands in __thread_exit.
        exit_index = self.machine.program.label_index("__thread_exit")
        br[0] = code_address(exit_index)
        return CpuContext(gr=gr, nat=nat, pr=pr, br=br, unat=0, pc=entry)

    def exit_current(self, value: int) -> None:
        """Terminate the running thread (from the __thread_exit stub)."""
        thread = self.current
        if thread.tid == 0:
            # Main thread exiting ends the process via the exit syscall
            # path; treat a stray __thread_exit the same way.
            self.cpu.exit_code = value
            self.cpu.halted = True
            return
        thread.status = "done"
        thread.exit_value = value
        for waiter_tid in thread.join_waiters:
            waiter = self.threads[waiter_tid]
            waiter.status = "ready"
            # join() returns the exit value in r8 when the waiter wakes.
            waiter.context.gr[GR_RET] = value & ((1 << 64) - 1)
            waiter.context.nat[GR_RET] = False
        thread.join_waiters.clear()
        self.cpu.yield_requested = True

    def join(self, tid: int) -> Optional[int]:
        """Join another thread; returns its value or blocks (None)."""
        target = self.threads.get(tid)
        if target is None or tid == self.current_tid:
            return -1
        if target.status == "done":
            return target.exit_value
        target.join_waiters.append(self.current_tid)
        self.current.status = "blocked"
        self.cpu.yield_requested = True
        return None

    def yield_now(self) -> None:
        """End the current slice after this instruction."""
        self.cpu.yield_requested = True

    # -- mutexes -----------------------------------------------------------

    def mutex_create(self) -> int:
        """Allocate a new mutex id."""
        mid = self._next_mutex
        self._next_mutex += 1
        self.mutexes[mid] = Mutex()
        return mid

    def mutex_lock(self, mid: int) -> bool:
        """True if acquired immediately; False if the caller now blocks."""
        mutex = self.mutexes.setdefault(mid, Mutex())
        if mutex.holder is None:
            mutex.holder = self.current_tid
            return True
        mutex.waiters.append(self.current_tid)
        self.current.status = "blocked"
        self.cpu.yield_requested = True
        return False

    def mutex_unlock(self, mid: int) -> None:
        """Release a mutex, waking the next waiter FIFO-style."""
        mutex = self.mutexes.get(mid)
        if mutex is None or mutex.holder != self.current_tid:
            return
        if mutex.waiters:
            next_tid = mutex.waiters.pop(0)
            mutex.holder = next_tid
            self.threads[next_tid].status = "ready"
        else:
            mutex.holder = None

    # -- scheduling -----------------------------------------------------------

    @property
    def multi_threaded(self) -> bool:
        """True once any thread beyond main exists."""
        return len(self.threads) > 1

    def _runnable(self) -> List[GuestThread]:
        return [t for t in self.threads.values() if t.status in ("ready", "running")]

    def _next_thread(self) -> Optional[GuestThread]:
        """Round-robin: the next ready thread after the current one."""
        tids = sorted(self.threads)
        if not tids:
            return None
        start = tids.index(self.current_tid) if self.current_tid in tids else 0
        rotation = tids[start + 1:] + tids[:start + 1]
        for tid in rotation:
            if self.threads[tid].status in ("ready", "running"):
                return self.threads[tid]
        return None

    def _switch_to(self, thread: GuestThread) -> None:
        if thread.tid == self.current_tid:
            return
        old = self.current
        if old.status == "running":
            old.status = "ready"
        old.context = self.cpu.save_context()
        self.cpu.load_context(thread.context)
        thread.context = None
        thread.status = "running"
        previous_tid = self.current_tid
        self.current_tid = thread.tid
        self.context_switches += 1
        self.cpu.counters.add_io_cycles(self.switch_cost)
        obs = getattr(self.machine, "obs", None)
        if obs is not None:
            from repro.obs.events import ThreadSwitchEvent

            obs.tracer.emit(ThreadSwitchEvent(
                from_tid=previous_tid,
                to_tid=thread.tid,
                instruction_count=self.cpu.counters.instructions,
                switches=self.context_switches,
            ))

    def _drain_instrumentation(self, budget: int) -> None:
        """With serialized bitmap access, never preempt mid-sequence."""
        cpu = self.cpu
        code = self.machine.program.code
        n = len(code)
        step_fast = cpu.step_fast
        extra = 0
        while (not cpu.halted and not cpu.yield_requested
               and extra < budget
               and 0 <= cpu.pc < n
               and code[cpu.pc].role is not None):
            step_fast()
            extra += 1
        cpu.issue.flush()

    def run_all(self, max_instructions: int = 200_000_000) -> int:
        """Schedule threads until the process exits; returns exit code."""
        remaining = max_instructions
        while True:
            if self.cpu.halted:
                return self.cpu.exit_code
            thread = self._next_thread()
            if thread is None:
                if all(t.status == "done" for t in self.threads.values()
                       if t.tid != 0):
                    # Only the main thread could run and it is not ready:
                    # cannot happen — main blocks only in join/lock.
                    raise DeadlockError("no runnable thread")
                raise DeadlockError(
                    "all threads blocked: "
                    + ", ".join(f"t{t.tid}={t.status}" for t in self.threads.values())
                )
            self._switch_to(thread)
            executed = self.cpu.run_slice(min(self.quantum, remaining))
            if self.serialize_bitmap and not self.cpu.yield_requested:
                self._drain_instrumentation(200)
            remaining -= executed
            if remaining <= 0:
                raise RunawayError("instruction budget exhausted (threads)")
