"""Guest runtime: devices, guest OS, C library source, machine facade."""

from repro.runtime.devices import Connection, Console, DeviceCosts, SimFileSystem, SimNetwork
from repro.runtime.guest_os import GuestOS, O_READ, O_WRITE, SYS_EXIT
from repro.runtime.libc_src import LIBC_SOURCE, NATIVE_DECLS
from repro.runtime.machine import DATA_BASE, LoaderError, Machine

__all__ = [
    "Connection",
    "Console",
    "DATA_BASE",
    "DeviceCosts",
    "GuestOS",
    "LIBC_SOURCE",
    "LoaderError",
    "Machine",
    "NATIVE_DECLS",
    "O_READ",
    "O_WRITE",
    "SYS_EXIT",
    "SimFileSystem",
    "SimNetwork",
]
