"""The Machine: loader + assembled simulation of one guest program.

Ties together the compiled program, sparse memory, taint bitmap, policy
engine, devices and CPU.  This is the main entry point for running
SHIFT-protected (or baseline) guests::

    compiled = compile_program([LIBC_SOURCE, APP_SOURCE], BYTE_LEVEL)
    machine = Machine(compiled, policy_config=config)
    machine.net.add_request(b"GET /index.html ...")
    exit_code = machine.run()
"""

from __future__ import annotations

import itertools
import os as _os
import weakref
from typing import Dict, List, Optional

from repro.compiler.instrument import GRANULARITY_BYTE
from repro.compiler.pipeline import CompiledProgram
from repro.cpu.core import CPU, code_address
from repro.cpu.faults import Fault, RunawayError
from repro.cpu.perf import IssueConfig, PerfCounters
from repro.isa.program import Program
from repro.mem.address import REGION_DATA, make_address
from repro.mem.cache import CacheHierarchy, HierarchyConfig
from repro.mem.memory import SparseMemory
from repro.runtime.devices import Console, DeviceCosts, SimFileSystem, SimNetwork
from repro.runtime.guest_os import GuestOS
from repro.taint.bitmap import TaintMap
from repro.taint.engine import PolicyEngine, SecurityAlert
from repro.taint.policy import PolicyConfig

#: Aborts that a live speculation epoch absorbs into rollback + replay:
#: guard trips (SpecGuardTrip is a Fault), guest faults, raise-mode
#: security alerts, and watchdog runaways.  Anything else (host bugs,
#: KeyboardInterrupt) propagates even mid-epoch.
_SPEC_REPLAYABLE = (Fault, SecurityAlert, RunawayError)

#: Where static data is placed in the data region.
DATA_BASE = make_address(REGION_DATA, 0x10000)
#: Heap follows static data at this offset within the data region.
HEAP_GAP = 0x100000
#: Guest heap ceiling when ShiftOptions.heap_limit is unset: generous
#: for every real workload, but a runaway malloc loop hits it long
#: before it can exhaust *host* memory.
DEFAULT_HEAP_LIMIT = 256 * 1024 * 1024


class LoaderError(Exception):
    """Raised when the program cannot be loaded (e.g. unknown symbol)."""


#: Process-wide machine ordinal for auto-assigned machine ids.
_MACHINE_ORDINAL = itertools.count()
#: trace_path -> weakref of the live machine that claimed it.  Used to
#: detect two live machines sharing one trace path (which used to end
#: with the second export silently clobbering the first).
_TRACE_CLAIMS: Dict[str, "weakref.ref"] = {}


def _suffixed_path(path: str, machine_id: str) -> str:
    """Insert a machine-id suffix before the path's extension."""
    root, ext = _os.path.splitext(path)
    return f"{root}.{machine_id}{ext}"


def resolve_trace_path(path: str, machine, *,
                       explicit_id: bool) -> str:
    """Pick the effective trace path for one machine.

    A machine constructed with an explicit ``machine_id`` always gets a
    deterministic per-machine filename (fleet workers share one
    configured path and must not clobber each other).  Without an
    explicit id the plain path is kept — unless another *live* machine
    already claimed it, in which case this machine's auto id is
    suffixed instead of silently overwriting the first machine's trace.
    """
    if explicit_id:
        return _suffixed_path(path, machine.machine_id)
    claim = _TRACE_CLAIMS.get(path)
    owner = claim() if claim is not None else None
    if owner is not None and owner is not machine:
        return _suffixed_path(path, machine.machine_id)
    _TRACE_CLAIMS[path] = weakref.ref(machine)
    return path


class Machine:
    """A loaded guest program ready to run."""

    def __init__(
        self,
        compiled: CompiledProgram,
        *,
        policy_config: Optional[PolicyConfig] = None,
        engine_mode: str = "raise",
        costs: Optional[DeviceCosts] = None,
        cache_config: Optional[HierarchyConfig] = None,
        issue_config: Optional[IssueConfig] = None,
        files: Optional[Dict[str, bytes]] = None,
        stdin: bytes = b"",
        thread_quantum: int = 800,
        serialize_bitmap: bool = False,
        tracing: bool = False,
        trace_path: Optional[str] = None,
        trace_capacity: Optional[int] = None,
        engine: str = "predecoded",
        recover_watchdog: Optional[int] = None,
        recover_max_recoveries: int = 1000,
        machine_id: Optional[str] = None,
        net_capacity: Optional[int] = None,
        adaptive: bool = True,
        speculative: bool = False,
    ) -> None:
        #: Stable identity used for per-machine trace filenames and
        #: fleet incident attribution ("worker w3 quarantined request 5").
        self.machine_id = machine_id if machine_id is not None \
            else f"m{next(_MACHINE_ORDINAL)}"
        self.compiled = compiled
        self.program: Program = compiled.program
        self.memory = SparseMemory()
        self.symbols: Dict[str, int] = {}
        self._load_data()
        self._relocate()

        granularity = (
            compiled.options.granularity
            if compiled.options.mode != "none"
            else GRANULARITY_BYTE
        )
        flat = getattr(compiled.options, "fast_tag_translation", False)
        self.taint_map = TaintMap(self.memory, granularity, flat=flat)
        #: Observability bundle (tracer + provenance), or None when
        #: tracing is off — the zero-overhead default.
        self.obs = None
        #: Effective trace-export path (per-machine unique; see
        #: :func:`resolve_trace_path`), or None when not exporting.
        self.trace_path: Optional[str] = None
        if tracing or trace_path is not None:
            from repro.obs import DEFAULT_CAPACITY, Observability

            if trace_path is not None:
                self.trace_path = resolve_trace_path(
                    trace_path, self, explicit_id=machine_id is not None)
            self.obs = Observability(
                granularity=granularity,
                capacity=(DEFAULT_CAPACITY if trace_capacity is None
                          else trace_capacity),
                trace_path=self.trace_path,
            )
            self.taint_map.provenance = self.obs.provenance
            self.taint_map.tracer = self.obs.tracer
        self.policy_config = policy_config or PolicyConfig()
        self.engine = PolicyEngine(self.policy_config, self.taint_map, mode=engine_mode)
        if self.obs is not None:
            self.engine.tracer = self.obs.tracer

        self.costs = costs or DeviceCosts()
        self.fs = SimFileSystem(files)
        self.net = SimNetwork(capacity=net_capacity)
        self.console = Console()
        self.executed_commands: List[str] = []
        self.executed_queries: List[str] = []
        self.rng_state = 0x853C49E6748FEA9B
        self.os = GuestOS(self)
        if stdin:
            self.os.stdin = stdin

        #: Interpreter engine choice ("predecoded" or "reference") —
        #: named cpu_engine because ``self.engine`` is the PolicyEngine.
        self.cpu_engine = engine
        self.cpu = CPU(
            self.program,
            self.memory,
            caches=CacheHierarchy(cache_config),
            issue_config=issue_config,
            syscall_handler=self.os.syscall,
            native_handler=self.os.native,
            fault_hook=self.engine.on_fault,
            engine=engine,
        )
        #: The engine locates alerts (pc / instruction count) via the CPU.
        self.engine.cpu = self.cpu
        if self.obs is not None:
            self.cpu.tracer = self.obs.tracer
        # Tag-store watch: every guest store into the region-0 tag space
        # is accounted before it commits, which keeps the taint map's
        # live-granule counter exact (O(1) quiescence checks, and the
        # taint.live_bytes metric) without bitmap scans.
        from repro.mem.address import tag_space_limit

        self.cpu.tag_watch = self.taint_map.on_guest_tag_store
        self.cpu.tag_limit = tag_space_limit(granularity)
        self.taint_map.counter_authoritative = True
        #: malloc'd block sizes by address, so free() can drop the
        #: block's taint (heap taint drains when the guest releases it).
        self._heap_sizes: Dict[int, int] = {}
        #: Adaptive mode controller (repro.adaptive), present only for
        #: dual-version builds with switching enabled.  ``adaptive=False``
        #: on a dual build forces always-track: execution never leaves
        #: the instrumented copies (the differential baseline).
        self.adaptive = None
        if adaptive and compiled.adaptive is not None:
            from repro.adaptive import AdaptiveController

            self.adaptive = AdaptiveController(self)
        from repro.runtime.threads import ThreadManager

        self.threads = ThreadManager(self, quantum=thread_quantum,
                                     serialize_bitmap=serialize_bitmap)

        #: Recovery supervisor (repro.resil), built for 'recover' mode.
        self.resil = None
        if engine_mode == "recover":
            from repro.resil.recovery import ResilienceSupervisor

            self.resil = ResilienceSupervisor(
                self, watchdog=recover_watchdog,
                max_recoveries=recover_max_recoveries,
                label=self.machine_id)

        #: Speculation controller (repro.spec): runs the fast copy
        #: under taint-range guards while taint is live but contained,
        #: with checkpoint rollback + replay-in-track on guard trips.
        #: Requires the adaptive controller (it switches between the
        #: same two program copies).
        self.spec = None
        if speculative and self.adaptive is not None:
            from repro.spec import SpeculationController

            self.spec = SpeculationController(self)

    # -- loading --------------------------------------------------------

    def _load_data(self) -> None:
        addr = DATA_BASE
        for item in self.program.data:
            align = max(item.align, 1)
            addr = (addr + align - 1) // align * align
            self.symbols[item.name] = addr
            if item.init:
                self.memory.write_bytes(addr, item.init)
            addr += max(item.size, 1)
        self._heap_next = (addr + HEAP_GAP + 15) // 16 * 16
        self._heap_base = self._heap_next

    def _relocate(self) -> None:
        for instr in self.program.code:
            if instr.sym is None:
                continue
            if instr.sym.startswith("&"):
                name = instr.sym[1:]
                if name not in self.program.labels:
                    raise LoaderError(f"undefined function {name!r}")
                instr.imm = code_address(self.program.label_index(name))
            else:
                if instr.sym not in self.symbols:
                    raise LoaderError(f"undefined data symbol {instr.sym!r}")
                instr.imm = self.symbols[instr.sym]

    def heap_alloc(self, size: int) -> int:
        """Bump-allocate guest heap memory (malloc backend).

        Raises :class:`~repro.cpu.faults.GuestOOMFault` when the guest
        exceeds its heap ceiling (``ShiftOptions.heap_limit``, or
        :data:`DEFAULT_HEAP_LIMIT`) — recoverable in ``recover`` mode.
        """
        addr = self._heap_next
        rounded = (max(size, 1) + 15) // 16 * 16
        limit = getattr(self.compiled.options, "heap_limit", None)
        if limit is None:
            limit = DEFAULT_HEAP_LIMIT
        in_use = addr - self._heap_base
        if in_use + rounded > limit:
            from repro.cpu.faults import GuestOOMFault

            raise GuestOOMFault(requested=size, in_use=in_use, limit=limit)
        self._heap_next = addr + rounded
        self._heap_sizes[addr] = rounded
        return addr

    # -- execution ---------------------------------------------------------

    def run(self, max_instructions: int = 200_000_000) -> int:
        """Run the guest to completion; returns its exit code.

        Programs that declare the threading natives run under the
        round-robin scheduler; everything else takes the plain
        single-context fast path.  :class:`SecurityAlert` propagates to
        the caller when the policy engine runs in ``raise`` mode.
        """
        try:
            while True:
                try:
                    if self.resil is not None:
                        code = self.resil.run_supervised(
                            max_instructions=max_instructions)
                    elif "thread_create" in self.program.natives:
                        code = self.threads.run_all(
                            max_instructions=max_instructions)
                    else:
                        self.cpu.run(max_instructions=max_instructions)
                        code = self.cpu.exit_code
                except BaseException as exc:
                    # A guard trip — or any abort raised while a
                    # speculation epoch is open — rolls the epoch back
                    # and resumes so the slice replays under tracking.
                    # Replayed aborts arrive here again with the epoch
                    # closed (rollback sets an entry cooldown) and
                    # propagate normally.
                    if self.spec is not None and self.spec.active and \
                            isinstance(exc, _SPEC_REPLAYABLE):
                        self.spec.handle_trip(exc)
                        continue
                    raise
                if self.spec is not None and not self.spec.finalize():
                    # The final epoch rolled back at exit: the restore
                    # un-halted the guest, run on to replay the tail.
                    continue
                return code
        except BaseException as exc:
            # Aborts that never went through the fault/alert tracing
            # paths (RunawayError, DeadlockError, host errors) would
            # otherwise leave the exported incident report without its
            # terminal event.
            self._record_terminal_event(exc)
            raise
        finally:
            if self.obs is not None:
                self.obs.export()

    def _record_terminal_event(self, exc: BaseException) -> None:
        """Trace the in-flight abort unless it was already emitted."""
        if self.obs is None or getattr(exc, "_obs_traced", False):
            return
        from repro.obs.events import FaultEvent

        pc = getattr(exc, "pc", -1)
        if pc is None or pc < 0:
            pc = self.cpu.pc
        instr = ""
        if 0 <= pc < len(self.program.code):
            instr = str(self.program.code[pc])
        self.obs.tracer.emit(FaultEvent(
            fault=type(exc).__name__,
            detail=str(exc),
            pc=pc,
            instruction=instr,
            instruction_count=self.cpu.counters.instructions,
        ))
        exc._obs_traced = True

    # -- resilience ----------------------------------------------------------

    def checkpoint(self):
        """Capture a restorable snapshot of the full machine state."""
        from repro.resil.checkpoint import MachineCheckpoint

        return MachineCheckpoint.capture(self)

    def restore(self, snapshot) -> None:
        """Roll this machine back to a previously captured checkpoint."""
        snapshot.restore(self)

    # -- convenience accessors -----------------------------------------------

    @property
    def counters(self) -> PerfCounters:
        """The CPU's performance counters."""
        return self.cpu.counters

    @property
    def alerts(self):
        """Security alerts recorded by the policy engine."""
        return self.engine.alerts

    def metrics(self):
        """Aggregate this machine's state into a fresh MetricsRegistry."""
        from repro.obs.metrics import collect_machine

        return collect_machine(self)

    def incident_reports(self):
        """Forensic reports for every recorded alert (see repro.obs)."""
        from repro.obs.report import incident_reports

        return incident_reports(self)

    def address_of(self, symbol: str) -> int:
        """Loaded address of a data symbol."""
        try:
            return self.symbols[symbol]
        except KeyError:
            raise LoaderError(f"unknown data symbol {symbol!r}") from None

    def read_global(self, symbol: str, size: int = 8) -> int:
        """Load a global variable's value."""
        return self.memory.load(self.address_of(symbol), size)

    def read_string(self, symbol: str) -> bytes:
        """Read a NUL-terminated global string."""
        return self.memory.read_cstring(self.address_of(symbol))
