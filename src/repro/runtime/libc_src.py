'''The MiniC C library.

Unlike the runtime natives (which model the paper's 17 hand-written
wrap functions for assembly routines), these string/format functions are
written in MiniC and *compiled with the application*, so they are
instrumented by SHIFT and propagate taint through the bitmap naturally —
just as the paper instruments glibc itself.  The library also provides
the Table 3 "glibc" data point for code-size expansion.
'''

#: Native (runtime-provided) function declarations.  Including this
#: block in a source file is the MiniC analogue of #include <unistd.h>.
NATIVE_DECLS = """
native int open(char *path, int flags);
native int read(int fd, char *buf, int n);
native int write(int fd, char *buf, int n);
native int close(int fd);
native int accept();
native int recv(int fd, char *buf, int n);
native int send(int fd, char *buf, int n);
native char *malloc(int n);
native void free(char *p);
native char *memcpy(char *dst, char *src, int n);
native char *memset(char *dst, int c, int n);
native int memcmp(char *a, char *b, int n);
native int rand();
native void srand(int seed);
native int system(char *cmd);
native int sql_exec(char *q);
native int is_tainted(char *p);
native void taint_region(char *p, int n);
native void clear_taint(char *p, int n);
native void console_log(char *s);
"""

#: The instrumentable C library itself.
LIBC_SOURCE = NATIVE_DECLS + """
int strlen(char *s) {
    int n = 0;
    while (s[n]) {
        n++;
    }
    return n;
}

char *strcpy(char *dst, char *src) {
    int i = 0;
    while ((dst[i] = src[i]) != 0) {
        i++;
    }
    return dst;
}

char *strncpy(char *dst, char *src, int n) {
    int i = 0;
    while (i < n && src[i]) {
        dst[i] = src[i];
        i++;
    }
    while (i < n) {
        dst[i] = 0;
        i++;
    }
    return dst;
}

char *strcat(char *dst, char *src) {
    int n = strlen(dst);
    int i = 0;
    while ((dst[n + i] = src[i]) != 0) {
        i++;
    }
    return dst;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i = 0;
    while (i < n && a[i] && a[i] == b[i]) {
        i++;
    }
    if (i == n) {
        return 0;
    }
    return a[i] - b[i];
}

char lower_char(char c) {
    if (c >= 'A' && c <= 'Z') {
        return (char)(c + 32);
    }
    return c;
}

int strcasecmp(char *a, char *b) {
    int i = 0;
    while (a[i] && lower_char(a[i]) == lower_char(b[i])) {
        i++;
    }
    return lower_char(a[i]) - lower_char(b[i]);
}

char *strchr(char *s, int c) {
    int i = 0;
    while (s[i]) {
        if (s[i] == (char)c) {
            return s + i;
        }
        i++;
    }
    return (char *)0;
}

char *strstr(char *hay, char *needle) {
    int i = 0;
    int j;
    if (!needle[0]) {
        return hay;
    }
    while (hay[i]) {
        j = 0;
        while (needle[j] && hay[i + j] == needle[j]) {
            j++;
        }
        if (!needle[j]) {
            return hay + i;
        }
        i++;
    }
    return (char *)0;
}

int atoi(char *s) {
    int v = 0;
    int i = 0;
    int neg = 0;
    while (s[i] == ' ') {
        i++;
    }
    if (s[i] == '-') {
        neg = 1;
        i++;
    }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    if (neg) {
        return -v;
    }
    return v;
}

int write_int(char *out, int v) {
    char tmp[24];
    int n = 0;
    int i = 0;
    if (v < 0) {
        out[i] = '-';
        i++;
        v = -v;
    }
    if (v == 0) {
        tmp[n] = '0';
        n++;
    }
    while (v > 0) {
        tmp[n] = (char)('0' + v % 10);
        n++;
        v = v / 10;
    }
    while (n > 0) {
        n--;
        out[i] = tmp[n];
        i++;
    }
    return i;
}

int write_hex(char *out, int v) {
    char tmp[20];
    char digits[20];
    int n = 0;
    int i = 0;
    strcpy(digits, "0123456789abcdef");
    if (v == 0) {
        tmp[n] = '0';
        n++;
    }
    while (v > 0) {
        tmp[n] = digits[v % 16];
        n++;
        v = v / 16;
    }
    while (n > 0) {
        n--;
        out[i] = tmp[n];
        i++;
    }
    return i;
}

// A printf-style formatter with a fixed four-slot argument list.
// Supports %d %x %s %c %% and the infamous %n, which stores the number
// of bytes written so far through a pointer argument -- the hook for
// format-string attacks (paper Table 2, Bftpd).
int format_str(char *out, char *fmt, int a0, int a1, int a2, int a3) {
    int args[4];
    int argi = 0;
    int oi = 0;
    int fi = 0;
    args[0] = a0;
    args[1] = a1;
    args[2] = a2;
    args[3] = a3;
    while (fmt[fi]) {
        char c = fmt[fi];
        if (c == '%') {
            char k = fmt[fi + 1];
            fi = fi + 2;
            if (k == 'd') {
                oi = oi + write_int(out + oi, args[argi]);
                argi++;
            } else if (k == 'x') {
                oi = oi + write_hex(out + oi, args[argi]);
                argi++;
            } else if (k == 's') {
                char *s = (char *)args[argi];
                argi++;
                while (*s) {
                    out[oi] = *s;
                    oi++;
                    s++;
                }
            } else if (k == 'c') {
                out[oi] = (char)args[argi];
                argi++;
                oi++;
            } else if (k == 'n') {
                int *p = (int *)args[argi];
                argi++;
                *p = oi;
            } else {
                out[oi] = k;
                oi++;
            }
        } else {
            out[oi] = c;
            oi++;
            fi++;
        }
    }
    out[oi] = 0;
    return oi;
}

int puts(char *s) {
    int n = write(1, s, strlen(s));
    write(1, "\\n", 1);
    return n + 1;
}
"""
