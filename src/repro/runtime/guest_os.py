"""The guest operating-system layer: syscalls, file descriptors, natives.

Natives are the runtime-provided functions that the paper handles with
*wrap functions* (section 4.2): they run uninstrumented (host-side) but
apply an explicit taint summary to the bitmap — e.g. ``memcpy`` copies
the taint of the source range to the destination range.

Taint *sources* (section 3.3.1) live here too: ``read``/``recv`` mark
the destination buffer tainted when the corresponding channel (file,
network, stdin) is configured as untrusted.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cpu.core import CPU
from repro.cpu.faults import IllegalInstructionFault
from repro.isa.operands import GR_FIRST_ARG, GR_RET, GR_SYSNUM
from repro.runtime.devices import Connection, Console, DeviceCosts, SimFileSystem, SimNetwork

#: Syscall numbers (r15).
SYS_EXIT = 0
SYS_THREAD_EXIT = 1

#: open() flags.
O_READ = 0
O_WRITE = 1

_FD_STDIN = 0
_FD_STDOUT = 1
_FD_STDERR = 2
_FD_FIRST_DYNAMIC = 8


@dataclass
class FileHandle:
    """State of one open file descriptor."""
    kind: str  # 'file-r' | 'file-w' | 'conn' | 'console' | 'stdin'
    path: str = ""
    pos: int = 0
    conn: Optional[Connection] = None
    write_buffer: bytearray = None


class GuestOS:
    """Syscall and native dispatch for one :class:`Machine`."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.costs: DeviceCosts = machine.costs
        self.fs: SimFileSystem = machine.fs
        self.net: SimNetwork = machine.net
        self.console: Console = machine.console
        self.stdin = b""
        self._stdin_pos = 0
        self._fds: Dict[int, FileHandle] = {}
        self._next_fd = _FD_FIRST_DYNAMIC
        #: Transient-I/O bookkeeping (resilience layer): retries absorbed
        #: by the backoff loop, and operations that gave up after
        #: exhausting ``DeviceCosts.io_retry_limit``.
        self.io_retries = 0
        self.io_failures = 0
        self._natives: Dict[str, Callable[[CPU], None]] = {}
        self._register_natives()

    # -- helpers -------------------------------------------------------

    def _arg(self, cpu: CPU, index: int) -> int:
        return cpu.read_gr(GR_FIRST_ARG + index)

    def _ret(self, cpu: CPU, value: int) -> None:
        cpu.write_gr(GR_RET, value & ((1 << 64) - 1), nat=False)

    def _charge(self, cpu: CPU, cycles: float) -> None:
        cpu.counters.add_io_cycles(cycles)

    def _taint_input(self, source: str, addr: int, length: int,
                     label: str = "", index: int = 0,
                     stream_offset: int = 0) -> None:
        if length > 0 and self.machine.policy_config.source_is_tainted(source):
            self.machine.taint_map.set_range(addr, length, True)
            self._record_origin(source, label or source, index,
                                addr, length, stream_offset)

    def _record_origin(self, source: str, label: str, index: int,
                       addr: int, length: int, stream_offset: int) -> None:
        """Register taint provenance + a trace event (tracing runs only)."""
        obs = self.machine.obs
        if obs is None:
            return
        from repro.obs.events import TaintSourceEvent

        origin = obs.provenance.record(source, label, index,
                                       addr, length, stream_offset)
        obs.tracer.emit(TaintSourceEvent(
            source=source,
            label=label,
            addr=addr,
            length=length,
            origin_id=origin.origin_id,
            stream_offset=stream_offset,
            instruction_count=self.machine.cpu.counters.instructions,
        ))

    def _alloc_fd(self, handle: FileHandle) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def _retry_io(self, cpu: CPU, faults, op: str) -> bool:
        """Absorb injected transient device errors with bounded backoff.

        Returns True when the operation may proceed (immediately, or
        after one or more retries — each charged an exponentially
        growing cycle cost), False when the retry budget is exhausted
        and the native should fail with -1, as a real driver would
        surface EIO after its reset attempts.
        """
        if faults is None or not faults.transient(op):
            return True
        backoff = self.costs.retry_backoff_base
        for _ in range(self.costs.io_retry_limit):
            self.io_retries += 1
            self._charge(cpu, backoff)
            backoff *= self.costs.retry_backoff_factor
            if not faults.transient(op):
                return True
        self.io_failures += 1
        return False

    # -- syscalls ---------------------------------------------------------

    def _trace_call(self, name: str, detail: str = "") -> None:
        obs = self.machine.obs
        if obs is None:
            return
        from repro.obs.events import SyscallEvent

        obs.tracer.emit(SyscallEvent(
            name=name, detail=detail,
            instruction_count=self.machine.cpu.counters.instructions))

    def syscall(self, cpu: CPU) -> None:
        """Dispatch a `break`-based syscall (exit, thread exit)."""
        number = cpu.read_gr(GR_SYSNUM)
        if self.machine.obs is not None:
            self._trace_call("exit" if number == SYS_EXIT else f"syscall#{number}")
        if number == SYS_EXIT:
            cpu.exit_code = cpu.read_gr(GR_FIRST_ARG)
            cpu.halted = True
            return
        if number == SYS_THREAD_EXIT:
            self.machine.threads.exit_current(cpu.read_gr(GR_FIRST_ARG))
            adaptive = getattr(self.machine, "adaptive", None)
            if adaptive is not None:
                adaptive.on_boundary(cpu)
            return
        raise IllegalInstructionFault(f"unknown syscall {number}")

    # -- native dispatch ------------------------------------------------------

    def native(self, cpu: CPU, index: int) -> None:
        """Dispatch a native (wrap-function) call by stub index."""
        names = self.machine.program.natives
        if not 0 <= index < len(names):
            raise IllegalInstructionFault(f"bad native index {index}")
        handler = self._natives.get(names[index])
        if handler is None:
            raise IllegalInstructionFault(f"native {names[index]!r} not provided")
        if self.machine.obs is not None:
            self._trace_call(names[index])
        spec = getattr(self.machine, "spec", None)
        if spec is not None:
            # Pre-dispatch: the pc still sits on the break, so an epoch
            # entered here checkpoints *before* the handler's effects —
            # a rollback re-executes this native exactly once.
            spec.before_native(cpu, names[index])
        self._charge(cpu, self.costs.native_base)
        handler(cpu)
        # Adaptive mode-switch point: the pc sits in the shared native
        # stub here, so no code-address translation of the pc itself is
        # needed and taint sources (read/recv/wire ingress) have just
        # run — the earliest moment new taint can exist.
        adaptive = getattr(self.machine, "adaptive", None)
        if adaptive is not None:
            adaptive.on_boundary(cpu)
        if spec is not None:
            spec.on_boundary(cpu)

    def _register_natives(self) -> None:
        n = self._natives
        n["open"] = self._native_open
        n["read"] = self._native_read
        n["write"] = self._native_write
        n["close"] = self._native_close
        n["accept"] = self._native_accept
        n["recv"] = self._native_recv
        n["send"] = self._native_send
        n["malloc"] = self._native_malloc
        n["free"] = self._native_free
        n["memcpy"] = self._native_memcpy
        n["memset"] = self._native_memset
        n["memcmp"] = self._native_memcmp
        n["rand"] = self._native_rand
        n["srand"] = self._native_srand
        n["system"] = self._native_system
        n["sql_exec"] = self._native_sql_exec
        n["is_tainted"] = self._native_is_tainted
        n["taint_region"] = self._native_taint_region
        n["clear_taint"] = self._native_clear_taint
        n["console_log"] = self._native_console_log
        n["thread_create"] = self._native_thread_create
        n["thread_join"] = self._native_thread_join
        n["thread_yield"] = self._native_thread_yield
        n["mutex_create"] = self._native_mutex_create
        n["mutex_lock"] = self._native_mutex_lock
        n["mutex_unlock"] = self._native_mutex_unlock

    # -- file and network natives -------------------------------------------

    def _native_open(self, cpu: CPU) -> None:
        path_addr = self._arg(cpu, 0)
        flags = cpu.read_gr(GR_FIRST_ARG + 1)
        path = self.machine.memory.read_cstring(path_addr)
        # High-level directory-traversal policies fire at this use point.
        self.machine.engine.check_use_point("fopen", path_addr, path,
                                            context=f"open({path.decode('latin-1')!r})")
        self._charge(cpu, self.costs.open_cost)
        # The simulated filesystem resolves ".." like a real kernel would
        # (that resolution is what directory-traversal attacks exploit).
        resolved = posixpath.normpath(path.decode("latin-1"))
        if flags == O_READ:
            if not self.fs.exists(resolved):
                self._ret(cpu, -1)
                return
            fd = self._alloc_fd(FileHandle(kind="file-r", path=resolved))
        else:
            fd = self._alloc_fd(FileHandle(kind="file-w", path=resolved,
                                           write_buffer=bytearray()))
        self._ret(cpu, fd)

    def _native_read(self, cpu: CPU) -> None:
        fd, buf, length = (self._arg(cpu, i) for i in range(3))
        if fd == _FD_STDIN:
            stream_offset = self._stdin_pos
            chunk = self.stdin[self._stdin_pos:self._stdin_pos + length]
            self._stdin_pos += len(chunk)
            source, label, stream_index = "stdin", "stdin", 0
        else:
            handle = self._fds.get(fd)
            if handle is None or handle.kind != "file-r":
                self._ret(cpu, -1)
                return
            if not self._retry_io(cpu, self.fs.faults, "read"):
                self._ret(cpu, -1)
                return
            data = self.fs.read(handle.path) or b""
            stream_offset = handle.pos
            chunk = data[handle.pos:handle.pos + length]
            if chunk and self.fs.faults is not None:
                # A truncated transfer delivers a short count, exactly
                # like a real short read; the guest's loop retries.
                chunk = chunk[:self.fs.faults.truncated_length(
                    "read", len(chunk))]
            handle.pos += len(chunk)
            source, label, stream_index = "file", handle.path, fd
        self.machine.memory.write_bytes(buf, chunk)
        self._taint_input(source, buf, len(chunk), label=label,
                          index=stream_index, stream_offset=stream_offset)
        self._charge(cpu, self.costs.file_base + self.costs.file_byte * len(chunk))
        self._ret(cpu, len(chunk))

    def _native_write(self, cpu: CPU) -> None:
        fd, buf, length = (self._arg(cpu, i) for i in range(3))
        data = self.machine.memory.read_bytes(buf, length)
        if fd in (_FD_STDOUT, _FD_STDERR):
            spec = getattr(self.machine, "spec", None)
            if spec is not None and spec.active:
                # Console output is externally visible: buffer it until
                # the speculation epoch commits.  (File writes are not
                # deferred — the checkpoint's fs/fd capture rewinds
                # them on rollback.)
                spec.defer_console(fd, data)
            else:
                self.console.write(fd, data)
            self._charge(cpu, self.costs.console_byte * length)
            self._ret(cpu, length)
            return
        handle = self._fds.get(fd)
        if handle is None or handle.kind != "file-w":
            self._ret(cpu, -1)
            return
        handle.write_buffer.extend(data)
        self._charge(cpu, self.costs.file_base + self.costs.file_byte * length)
        self._ret(cpu, length)

    def _native_close(self, cpu: CPU) -> None:
        fd = self._arg(cpu, 0)
        handle = self._fds.pop(fd, None)
        if handle is not None and handle.kind == "file-w":
            self.fs.write(handle.path, bytes(handle.write_buffer))
        self._charge(cpu, self.costs.close_cost)
        self._ret(cpu, 0)

    def _native_accept(self, cpu: CPU) -> None:
        # Request boundary: the recovery supervisor checkpoints *before*
        # the pending connection is dequeued, so a rollback re-executes
        # this accept with the offender back at the head of the queue.
        resil = getattr(self.machine, "resil", None)
        if resil is not None:
            resil.on_request_boundary()
        conn = self.net.accept()
        self._charge(cpu, self.costs.accept_cost)
        if conn is None:
            self._ret(cpu, -1)
            return
        self._ret(cpu, self._alloc_fd(FileHandle(kind="conn", conn=conn)))

    def _native_recv(self, cpu: CPU) -> None:
        fd, buf, length = (self._arg(cpu, i) for i in range(3))
        handle = self._fds.get(fd)
        if handle is None or handle.kind != "conn":
            self._ret(cpu, -1)
            return
        if not self._retry_io(cpu, self.net.faults, "recv"):
            self._ret(cpu, -1)
            return
        stream_offset = handle.conn.read_pos
        chunk = handle.conn.recv(length)
        self.machine.memory.write_bytes(buf, chunk)
        if handle.conn.taint_mask is not None:
            self._apply_wire_tags(handle.conn, buf, len(chunk), stream_offset)
        else:
            self._taint_input("network", buf, len(chunk),
                              label=f"request#{handle.conn.index}",
                              index=handle.conn.index,
                              stream_offset=stream_offset)
        self._charge(cpu, self.costs.net_base + self.costs.net_byte * len(chunk))
        self._ret(cpu, len(chunk))

    def _apply_wire_tags(self, conn: Connection, addr: int, length: int,
                         stream_offset: int) -> None:
        """Ingress for wire-transported taint (repro.fleet).

        The connection carries its upstream tier's packed tag bits, so
        instead of asking the policy whether "network" is a tainted
        source, the exact bits are re-applied to the recv buffer: a
        request tainted at the frontend stays tainted here, and bytes
        the upstream considered clean stay clean.
        """
        if length <= 0:
            return
        from repro.taint.bitmap import slice_packed, unpack_flags

        packed = slice_packed(conn.taint_mask, stream_offset, length)
        self.machine.taint_map.import_range(addr, length, packed)
        if self.machine.obs is not None:
            flags = unpack_flags(packed, length)
            start = None
            for i, tainted in enumerate([*flags, False]):
                if tainted and start is None:
                    start = i
                elif not tainted and start is not None:
                    self._record_origin(
                        "wire", f"request#{conn.index}", conn.index,
                        addr + start, i - start, stream_offset + start)
                    start = None

    def _native_send(self, cpu: CPU) -> None:
        fd, buf, length = (self._arg(cpu, i) for i in range(3))
        handle = self._fds.get(fd)
        if handle is None or handle.kind != "conn":
            self._ret(cpu, -1)
            return
        if not self._retry_io(cpu, self.net.faults, "send"):
            self._ret(cpu, -1)
            return
        data = self.machine.memory.read_bytes(buf, length)
        # Cross-site-scripting policy H5 checks outbound HTML here.
        self.machine.engine.check_use_point("html_output", buf, data, context="send")
        outbound_tags = None
        if handle.conn.capture_taint:
            # Egress tagging (repro.fleet): remember the per-byte taint
            # of what was sent so the bytes can leave the machine as a
            # TaggedMessage with their tags still attached.
            outbound_tags = self.machine.taint_map.taint_flags(buf, length)
        spec = getattr(self.machine, "spec", None)
        if spec is not None and spec.active:
            # Externally visible effect under speculation: the payload
            # and its tags are computed *now* (machine state at send
            # time), but nothing reaches the peer until commit — a
            # rolled-back epoch must leave no phantom bytes on the wire.
            spec.defer_send(handle.conn, data, outbound_tags)
        else:
            if outbound_tags is not None:
                handle.conn.record_outbound_tags(outbound_tags)
            handle.conn.send(data)
        self._charge(cpu, self.costs.net_base + self.costs.net_byte * length)
        self._ret(cpu, length)

    # -- memory natives (wrap functions) ------------------------------------

    def _native_malloc(self, cpu: CPU) -> None:
        size = self._arg(cpu, 0)
        self._ret(cpu, self.machine.heap_alloc(size))

    def _native_free(self, cpu: CPU) -> None:
        # Bump allocator: the storage is never reused, but the block's
        # taint dies with it (freed data is not a live flow), which is
        # what lets an adaptive machine re-quiesce after a request.
        addr = self._arg(cpu, 0)
        size = self.machine._heap_sizes.pop(addr, 0)
        if size:
            self.machine.taint_map.set_range(addr, size, False)
        self._ret(cpu, 0)

    def _native_memcpy(self, cpu: CPU) -> None:
        dst, src, n = (self._arg(cpu, i) for i in range(3))
        data = self.machine.memory.read_bytes(src, n)
        self.machine.memory.write_bytes(dst, data)
        # Wrap-function taint summary: destination taint := source taint.
        self.machine.taint_map.copy_taint(dst, src, n)
        self._charge(cpu, self.costs.native_byte * n)
        self._ret(cpu, dst)

    def _native_memset(self, cpu: CPU) -> None:
        dst = self._arg(cpu, 0)
        value = cpu.read_gr(GR_FIRST_ARG + 1) & 0xFF
        n = self._arg(cpu, 2)
        fill_tainted = cpu.read_nat(GR_FIRST_ARG + 1)
        self.machine.memory.write_bytes(dst, bytes([value]) * n)
        self.machine.taint_map.set_range(dst, n, fill_tainted)
        self._charge(cpu, self.costs.native_byte * n)
        self._ret(cpu, dst)

    def _native_memcmp(self, cpu: CPU) -> None:
        a, b, n = (self._arg(cpu, i) for i in range(3))
        da = self.machine.memory.read_bytes(a, n)
        db = self.machine.memory.read_bytes(b, n)
        result = 0 if da == db else (-1 if da < db else 1)
        self._charge(cpu, self.costs.native_byte * n)
        self._ret(cpu, result)

    # -- misc natives -----------------------------------------------------------

    def _native_rand(self, cpu: CPU) -> None:
        self.machine.rng_state = (self.machine.rng_state * 6364136223846793005 + 1442695040888963407) & ((1 << 64) - 1)
        self._ret(cpu, (self.machine.rng_state >> 33) & 0x7FFFFFFF)

    def _native_srand(self, cpu: CPU) -> None:
        self.machine.rng_state = self._arg(cpu, 0) or 1
        self._ret(cpu, 0)

    def _native_system(self, cpu: CPU) -> None:
        cmd_addr = self._arg(cpu, 0)
        cmd = self.machine.memory.read_cstring(cmd_addr)
        self.machine.engine.check_use_point("system", cmd_addr, cmd,
                                            context=f"system({cmd.decode('latin-1')!r})")
        self.machine.executed_commands.append(cmd.decode("latin-1"))
        self._charge(cpu, 50_000)
        self._ret(cpu, 0)

    def _native_sql_exec(self, cpu: CPU) -> None:
        query_addr = self._arg(cpu, 0)
        query = self.machine.memory.read_cstring(query_addr)
        self.machine.engine.check_use_point("sql", query_addr, query,
                                            context=f"sql({query.decode('latin-1')!r})")
        self.machine.executed_queries.append(query.decode("latin-1"))
        self._charge(cpu, 30_000)
        self._ret(cpu, 0)

    # -- taint debugging natives -------------------------------------------------

    def _native_is_tainted(self, cpu: CPU) -> None:
        addr = self._arg(cpu, 0)
        self._ret(cpu, 1 if self.machine.taint_map.is_tainted(addr) else 0)

    def _native_taint_region(self, cpu: CPU) -> None:
        addr, n = self._arg(cpu, 0), self._arg(cpu, 1)
        self.machine.taint_map.set_range(addr, n, True)
        if n > 0:
            self._record_origin("manual", "taint_region", 0, addr, n, 0)
        self._ret(cpu, 0)

    def _native_clear_taint(self, cpu: CPU) -> None:
        addr, n = self._arg(cpu, 0), self._arg(cpu, 1)
        self.machine.taint_map.set_range(addr, n, False)
        self._ret(cpu, 0)

    def _native_console_log(self, cpu: CPU) -> None:
        addr = self._arg(cpu, 0)
        text = self.machine.memory.read_cstring(addr)
        spec = getattr(self.machine, "spec", None)
        if spec is not None and spec.active:
            spec.defer_console(1, text + b"\n")
        else:
            self.console.write(1, text + b"\n")
        self._ret(cpu, 0)

    # -- threading natives (paper 4.4 future work) ----------------------------

    def _native_thread_create(self, cpu: CPU) -> None:
        func, arg = self._arg(cpu, 0), self._arg(cpu, 1)
        tid = self.machine.threads.spawn(func, arg)
        self._charge(cpu, 5_000)  # clone + stack setup
        self._ret(cpu, tid)

    def _native_thread_join(self, cpu: CPU) -> None:
        tid = self._arg(cpu, 0)
        value = self.machine.threads.join(tid)
        if value is not None:
            self._ret(cpu, value)
        # Otherwise the thread is now blocked; r8 is written on wake-up.

    def _native_thread_yield(self, cpu: CPU) -> None:
        self.machine.threads.yield_now()
        self._ret(cpu, 0)

    def _native_mutex_create(self, cpu: CPU) -> None:
        self._ret(cpu, self.machine.threads.mutex_create())

    def _native_mutex_lock(self, cpu: CPU) -> None:
        self.machine.threads.mutex_lock(self._arg(cpu, 0))
        self._ret(cpu, 0)

    def _native_mutex_unlock(self, cpu: CPU) -> None:
        self.machine.threads.mutex_unlock(self._arg(cpu, 0))
        self._ret(cpu, 0)
