"""Simulated devices: filesystem, network, console, and their latencies.

The paper runs on real hardware with a real OS; here I/O is simulated
with fixed device latencies so that the server experiment (Fig. 6)
keeps its defining property — request handling is I/O-bound, so load/
store instrumentation barely shows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class DeviceCosts:
    """Cycle costs charged for OS-level operations (not instrumented)."""

    syscall_base: float = 800.0
    open_cost: float = 6_000.0
    close_cost: float = 800.0
    file_byte: float = 1.5  # per byte read/written to a file
    file_base: float = 4_000.0
    net_byte: float = 3.0  # per byte sent/received on the network
    net_base: float = 15_000.0
    accept_cost: float = 20_000.0
    console_byte: float = 1.0
    native_base: float = 60.0  # trap + dispatch for a native call
    native_byte: float = 1.0  # per byte processed by a wrap function
    #: Transient-I/O retry policy (resilience layer): a recv/send/read
    #: that hits an injected transient device error is retried up to
    #: ``io_retry_limit`` times, each attempt charging an exponentially
    #: growing backoff in cycles.
    io_retry_limit: int = 3
    retry_backoff_base: float = 2_000.0
    retry_backoff_factor: float = 2.0


class SimFileSystem:
    """An in-memory filesystem keyed by absolute path."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None) -> None:
        self.files: Dict[str, bytes] = dict(files or {})
        #: Optional :class:`repro.resil.transient.TransientErrorInjector`;
        #: None (the default) keeps the I/O natives on their zero-cost path.
        self.faults = None

    def exists(self, path: str) -> bool:
        """True if a file exists at the path."""
        return path in self.files

    def read(self, path: str) -> Optional[bytes]:
        """File contents, or None."""
        return self.files.get(path)

    def write(self, path: str, data: bytes) -> None:
        """Create/replace a file."""
        self.files[path] = data

    def append(self, path: str, data: bytes) -> None:
        """Append to (or create) a file."""
        self.files[path] = self.files.get(path, b"") + data


@dataclass
class Connection:
    """One network connection: inbound request bytes, outbound response."""

    inbound: bytes
    outbound: bytearray = field(default_factory=bytearray)
    read_pos: int = 0
    #: 1-based arrival number, used by taint provenance ("request #2").
    index: int = 0
    #: Wire-transported taint (repro.fleet): packed per-byte tag bits
    #: covering ``inbound``.  When set, the ``recv`` native re-applies
    #: exactly these tags on ingress instead of blanket-tainting the
    #: buffer from the policy's source configuration — the tags are the
    #: upstream tier's authoritative view of the data.
    taint_mask: Optional[bytes] = None
    #: When True, each ``send`` records the per-byte taint of the sent
    #: buffer so the response (or a proxied request) can leave the
    #: machine as a :class:`~repro.fleet.wire.TaggedMessage`.  Off by
    #: default: ordinary connections pay nothing on the send path.
    capture_taint: bool = False
    #: Per-byte taint flags of ``outbound`` (only when ``capture_taint``).
    outbound_tags: Optional[List[bool]] = None

    def recv(self, n: int) -> bytes:
        """Consume up to n inbound bytes."""
        chunk = self.inbound[self.read_pos:self.read_pos + n]
        self.read_pos += len(chunk)
        return chunk

    def send(self, data: bytes) -> None:
        """Append outbound bytes."""
        self.outbound.extend(data)

    def record_outbound_tags(self, flags: List[bool]) -> None:
        """Append per-byte taint flags for bytes just sent (egress hook)."""
        if self.outbound_tags is None:
            self.outbound_tags = []
        self.outbound_tags.extend(flags)


class SimNetwork:
    """Pending connections for a server guest (accept/recv/send).

    ``capacity`` bounds the pending-request queue (None = unbounded,
    the historical behaviour): once full, further ``add_request`` calls
    are *dropped* — counted in ``dropped`` and surfaced through
    ``machine.metrics()`` — instead of growing an unbounded backlog.
    The fleet frontend uses this as its per-worker backpressure signal.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("network queue capacity must be positive")
        self.capacity = capacity
        self.pending: Deque[Connection] = deque()
        self.completed: List[Connection] = []
        #: Connections removed by the recovery supervisor after a rollback.
        self.quarantined: List[Connection] = []
        #: Requests refused because the pending queue was at capacity.
        self.dropped = 0
        self._next_index = 1
        #: Optional :class:`repro.resil.transient.TransientErrorInjector`;
        #: None (the default) keeps the I/O natives on their zero-cost path.
        self.faults = None

    def add_request(self, data: bytes, *, taint_mask: Optional[bytes] = None,
                    capture_taint: bool = False) -> Optional[Connection]:
        """Queue an inbound connection carrying the given bytes.

        Returns None (and counts a drop) when the bounded queue is full.
        ``taint_mask`` attaches wire-transported tags the recv path will
        re-apply; ``capture_taint`` records outbound taint for egress.
        """
        if self.capacity is not None and len(self.pending) >= self.capacity:
            self.dropped += 1
            return None
        conn = Connection(inbound=data, index=self._next_index,
                          taint_mask=taint_mask, capture_taint=capture_taint)
        self._next_index += 1
        self.pending.append(conn)
        return conn

    def accept(self) -> Optional[Connection]:
        """Pop the next pending connection (None when drained)."""
        if not self.pending:
            return None
        conn = self.pending.popleft()
        self.completed.append(conn)
        return conn


class Console:
    """Captures guest stdout/stderr."""

    def __init__(self) -> None:
        self.out = bytearray()
        self.err = bytearray()

    def write(self, fd: int, data: bytes) -> None:
        """Append to stdout (fd 1) or stderr (fd 2)."""
        (self.err if fd == 2 else self.out).extend(data)

    @property
    def text(self) -> str:
        """Captured stdout as text."""
        return self.out.decode("latin-1")
