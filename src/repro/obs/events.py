"""Structured trace events emitted by the observability subsystem.

Every event is a plain dataclass with a class-level ``KIND`` string and
a ``to_dict()`` that flattens it for the JSON-lines exporter.  Events
are cheap to construct but are only ever built behind an
``if tracer is not None:`` guard, so a machine running with tracing
disabled never allocates one (the paper's hot loop stays untouched).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Tuple


@dataclass
class Event:
    """Base class: ``KIND`` names the event type in exports."""

    KIND: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """Flat dict form, with the event kind under ``"kind"``."""
        data = {"kind": self.KIND}
        data.update(asdict(self))
        return data

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """Declared field names (schema documentation helper)."""
        return tuple(f.name for f in fields(cls))


@dataclass
class TaintSourceEvent(Event):
    """Input bytes were marked tainted by a taint source (paper 3.3.1)."""

    KIND: ClassVar[str] = "taint_source"

    source: str  # 'network' | 'file' | 'stdin' | 'manual'
    label: str  # request#N, file path, ...
    addr: int  # guest address the bytes landed at
    length: int
    origin_id: int  # provenance origin created for this input
    stream_offset: int  # byte position within the source stream
    instruction_count: int = 0


@dataclass
class TaintStoreEvent(Event):
    """A host-side taint-summary update to the bitmap (wrap functions)."""

    KIND: ClassVar[str] = "taint_store"

    op: str  # 'set' | 'clear' | 'copy'
    addr: int  # destination range start
    length: int
    src: int = -1  # source range start for 'copy'
    instruction_count: int = 0


@dataclass
class FaultEvent(Event):
    """A processor fault (NaT consumption, illegal instruction, ...)."""

    KIND: ClassVar[str] = "fault"

    fault: str  # fault class name
    detail: str  # NaT-consumption kind or message
    pc: int
    instruction: str  # disassembly of the faulting instruction
    instruction_count: int = 0


@dataclass
class AlertEvent(Event):
    """The policy engine reported a security alert."""

    KIND: ClassVar[str] = "alert"

    policy_id: str
    message: str
    context: str = ""
    pc: int = -1
    instruction_count: int = 0
    origin_ids: Tuple[int, ...] = ()


@dataclass
class SyscallEvent(Event):
    """A syscall or native (wrap-function) call entered the runtime."""

    KIND: ClassVar[str] = "syscall"

    name: str
    detail: str = ""
    instruction_count: int = 0


@dataclass
class ThreadSwitchEvent(Event):
    """The round-robin scheduler moved the core to another thread."""

    KIND: ClassVar[str] = "thread_switch"

    from_tid: int
    to_tid: int
    instruction_count: int = 0
    switches: int = 0  # cumulative context-switch count


@dataclass
class CheckpointEvent(Event):
    """A machine checkpoint was captured (request boundary or manual)."""

    KIND: ClassVar[str] = "checkpoint"

    reason: str  # 'request_boundary' | 'manual'
    pages: int  # memory pages captured by this snapshot
    pending_requests: int
    instruction_count: int = 0
    snapshot: str = "full"  # 'full' | 'delta'
    captured_bytes: int = 0  # page bytes captured by this snapshot
    chain_length: int = 1  # snapshots in the delta chain ending here


@dataclass
class RollbackEvent(Event):
    """The supervisor rolled the machine back to its last checkpoint."""

    KIND: ClassVar[str] = "rollback"

    reason: str  # 'alert' | 'fault' | 'oom' | 'runaway'
    detail: str  # alert/fault text
    pc: int = -1  # pc at the abort point (pre-rollback)
    instruction_count: int = 0  # at the abort point (pre-rollback)
    restored_instruction_count: int = 0


@dataclass
class QuarantineEvent(Event):
    """An offending request was removed from the queue after rollback."""

    KIND: ClassVar[str] = "quarantine"

    request_index: int  # Connection.index, -1 if nothing was pending
    reason: str  # 'alert' | 'fault' | 'oom' | 'runaway'
    policy_id: str = ""  # set when the abort was a SecurityAlert
    instruction_count: int = 0


@dataclass
class InjectionEvent(Event):
    """The fault-injection campaign perturbed the machine state."""

    KIND: ClassVar[str] = "injection"

    kind: str  # 'tag_flip' | 'nat_drop' | 'read_truncate' | 'transient'
    detail: str
    instruction_count: int = 0


@dataclass
class AdaptiveSwitchEvent(Event):
    """The adaptive controller switched tracking mode (repro.adaptive)."""

    KIND: ClassVar[str] = "adaptive_switch"

    direction: str  # 'adaptive.enter_track' | 'adaptive.enter_fast'
    trigger_pc: int  # pc at the boundary where the switch fired
    live_bytes: int  # tainted bytes at switch time (0 for enter_fast)
    instruction_count: int = 0


@dataclass
class SpecEvent(Event):
    """The speculation controller entered, committed or rolled back an
    epoch (repro.spec)."""

    KIND: ClassVar[str] = "spec"

    action: str  # 'enter' | 'commit' | 'rollback'
    epoch: int  # speculation epoch id (monotonic per machine)
    trigger_pc: int = -1  # pc at entry / the guard-tripping access
    guarded_bytes: int = 0  # total bytes covered by the watch ranges
    ranges: int = 0  # number of merged watch ranges
    reason: str = ""  # commit/rollback trigger ('boundary', 'guard', ...)
    instruction_count: int = 0


@dataclass
class ServeRequestEvent(Event):
    """One open-loop request completed its lifecycle (repro.serve).

    Timestamps are simulated cycles on the serving clock: ``enqueue``
    when the request arrived at the frontend, ``dispatch`` when a
    worker started it, ``complete`` when the worker finished (or the
    drop/ejection was recorded).
    """

    KIND: ClassVar[str] = "serve_request"

    index: int  # arrival order in the workload
    request_kind: str  # 'clean' | 'traversal' | 'overflow' | ...
    worker: str  # '' when the request was dropped
    outcome: str  # 'served' | 'quarantined' | 'fatal' | 'dropped' | ...
    enqueue: float
    dispatch: float
    complete: float


@dataclass
class ScaleEvent(Event):
    """The autoscaler changed the worker set (repro.serve)."""

    KIND: ClassVar[str] = "scale"

    action: str  # 'scale_up' | 'drain' | 'retire' | 'eject'
    worker: str
    depth: float  # smoothed queue depth per routable worker at decision
    workers: int  # routable workers after the action
    time: float  # simulated cycles


@dataclass
class WorkerCrashEvent(Event):
    """Chaos injected a fail-stop crash or stall (repro.chaos)."""

    KIND: ClassVar[str] = "worker_crash"

    fault: str  # 'crash' | 'stall'
    worker: str
    time: float  # simulated cycles at injection
    duration: float = 0.0  # stall length (stalls only)
    applied: bool = True  # False when the target was already gone


@dataclass
class RecoveryEvent(Event):
    """A dead worker was detected and replaced (repro.chaos)."""

    KIND: ClassVar[str] = "recovery"

    worker: str  # the worker declared dead
    replacement: str  # the worker spawned in its place
    cause: str  # 'crash' | 'stall'
    failed_at: float  # simulated cycles when the fault fired
    detected_at: float  # when the failure detector declared death
    recovered_at: float  # when the replacement could first dispatch
    watermark: int = -1  # replica watermark the replacement rehydrated
    replayed: int = 0  # open requests moved to the replacement


#: Every event type, for schema documentation and exporters.
EVENT_TYPES: Tuple[type, ...] = (
    TaintSourceEvent,
    TaintStoreEvent,
    FaultEvent,
    AlertEvent,
    SyscallEvent,
    ThreadSwitchEvent,
    CheckpointEvent,
    RollbackEvent,
    QuarantineEvent,
    InjectionEvent,
    AdaptiveSwitchEvent,
    SpecEvent,
    ServeRequestEvent,
    ScaleEvent,
    WorkerCrashEvent,
    RecoveryEvent,
)
