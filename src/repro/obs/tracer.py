"""Bounded ring-buffer tracer with a JSON-lines exporter.

The tracer is the single sink every instrumented component writes to.
Integration sites hold an ``Optional[Tracer]`` and guard emission with
``if tracer is not None:``, so a disabled machine pays nothing beyond
the attribute load on the (cold) paths that can emit at all — the
per-instruction execute loop has no tracer check whatsoever.

The buffer is bounded (``capacity`` events); once full the oldest
events are dropped and counted in ``dropped``, so tracing a
billion-instruction run cannot exhaust host memory.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.obs.events import Event

DEFAULT_CAPACITY = 65_536


class Tracer:
    """Collects :class:`Event` objects into a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self.total_events = 0
        self.dropped = 0
        self.counts: Counter = Counter()

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, event: Event) -> None:
        """Record one event (oldest events drop when the ring is full)."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.total_events += 1
        self.counts[event.KIND] += 1

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Buffered events, optionally filtered by ``KIND``."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.KIND == kind]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """Most recent event (of a kind), or None."""
        if kind is None:
            return self._ring[-1] if self._ring else None
        for event in reversed(self._ring):
            if event.KIND == kind:
                return event
        return None

    def clear(self) -> None:
        """Drop buffered events and reset the counters."""
        self._ring.clear()
        self.total_events = 0
        self.dropped = 0
        self.counts.clear()

    def summary(self) -> Dict[str, int]:
        """Per-kind event counts plus totals and drops."""
        out = {f"events.{kind}": n for kind, n in sorted(self.counts.items())}
        out["events.total"] = self.total_events
        out["events.dropped"] = self.dropped
        return out

    # -- export ---------------------------------------------------------

    def to_jsonl(self, events: Optional[Iterable[Event]] = None) -> str:
        """Serialise the buffer (or the given events) as JSON lines."""
        lines = [json.dumps(e.to_dict(), sort_keys=True)
                 for e in (self._ring if events is None else events)]
        return "\n".join(lines) + ("\n" if lines else "")

    def export_jsonl(self, path: str) -> int:
        """Write the buffered events to ``path``; returns events written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(self._ring)
