"""Forensic incident reports: alert -> pc -> disassembly -> origins.

Given a :class:`~repro.runtime.machine.Machine` after a run, build one
:class:`IncidentReport` per recorded alert: the policy that fired, the
faulting/checking pc with a disassembled window from :mod:`repro.isa`,
and the taint-origin chain explaining where the offending bytes entered
the system.  Both a human-readable ``render()`` and a machine-readable
``to_dict()`` are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # imported lazily at runtime to keep repro.obs
    from repro.taint.engine import AlertRecord  # import-safe from repro.taint
    from repro.taint.policy import Policy

#: Instructions shown on each side of the faulting pc.
WINDOW_RADIUS = 3


def disassemble_window(program, pc: Optional[int],
                       radius: int = WINDOW_RADIUS) -> List[str]:
    """Disassembly lines around ``pc`` (the pc line marked with ``=>``)."""
    if pc is None or not 0 <= pc < len(program.code):
        return []
    lines = []
    lo = max(0, pc - radius)
    hi = min(len(program.code), pc + radius + 1)
    labels = {index: name for name, index in program.labels.items()}
    for index in range(lo, hi):
        if index in labels:
            lines.append(f"{labels[index]}:")
        marker = "=>" if index == pc else "  "
        lines.append(f"{marker} {index:6d}: {program.code[index]}")
    return lines


@dataclass
class IncidentReport:
    """Forensic record of one security alert."""

    alert: AlertRecord
    policy: Policy
    disassembly: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Machine-readable form (origins expand to their dicts)."""
        return {
            "policy_id": self.alert.policy_id,
            "attack": self.policy.attack,
            "description": self.policy.description,
            "message": self.alert.message,
            "context": self.alert.context,
            "pc": self.alert.pc,
            "instruction_count": self.alert.instruction_count,
            "origins": [o.to_dict() for o in self.alert.origins],
            "disassembly": list(self.disassembly),
        }

    def render(self) -> str:
        """Human-readable incident report."""
        alert = self.alert
        lines = [
            f"INCIDENT {alert.policy_id} — {self.policy.attack}",
            f"  policy   : {self.policy.description}",
            f"  message  : {alert.message}",
        ]
        if alert.context:
            lines.append(f"  context  : {alert.context}")
        where = "pc=?" if alert.pc is None else f"pc={alert.pc}"
        lines.append(f"  where    : {where} after {alert.instruction_count:,} instructions")
        if self.disassembly:
            lines.append("  code     :")
            lines.extend(f"    {line}" for line in self.disassembly)
        if alert.origins:
            lines.append("  taint origin chain:")
            lines.extend(f"    {origin.describe()}" for origin in alert.origins)
        else:
            lines.append("  taint origin chain: (none recorded — run with tracing=True)")
        return "\n".join(lines)


def build_incident_report(machine, alert: "AlertRecord") -> IncidentReport:
    """Build the forensic report for one recorded alert."""
    from repro.taint.policy import POLICY_BY_ID

    policy = POLICY_BY_ID[alert.policy_id]
    return IncidentReport(
        alert=alert,
        policy=policy,
        disassembly=disassemble_window(machine.program, alert.pc),
    )


def incident_reports(machine) -> List[IncidentReport]:
    """One report per alert the machine's policy engine recorded."""
    return [build_incident_report(machine, alert) for alert in machine.alerts]


def render_incidents(machine) -> str:
    """Render every incident report (or a clean-run note)."""
    reports = incident_reports(machine)
    if not reports:
        return "no security alerts recorded"
    return "\n\n".join(report.render() for report in reports)
