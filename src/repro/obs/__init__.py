"""Observability: taint provenance, structured tracing, metrics, forensics.

The paper turns hardware faults into *security alerts*; this package
turns alerts into *evidence*.  It is strictly additive: with
``tracing=False`` (the default) a :class:`~repro.runtime.machine.Machine`
carries no tracer, no provenance table and emits nothing — the
execution hot loop is untouched and counters are bit-identical to the
untraced build.

Components
----------
* :mod:`repro.obs.events` — dataclass trace-event schema
* :mod:`repro.obs.tracer` — bounded ring-buffer tracer + JSONL export
* :mod:`repro.obs.provenance` — numbered taint origins + side table
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry
* :mod:`repro.obs.report` — per-alert forensic incident reports
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (
    EVENT_TYPES,
    AdaptiveSwitchEvent,
    AlertEvent,
    CheckpointEvent,
    Event,
    FaultEvent,
    InjectionEvent,
    QuarantineEvent,
    RollbackEvent,
    ScaleEvent,
    ServeRequestEvent,
    SyscallEvent,
    TaintSourceEvent,
    TaintStoreEvent,
    ThreadSwitchEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_machine,
)
from repro.obs.provenance import ProvenanceTracker, TaintOrigin
from repro.obs.report import (
    IncidentReport,
    build_incident_report,
    incident_reports,
    render_incidents,
)
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer


class Observability:
    """The per-machine bundle: one tracer plus one provenance tracker."""

    def __init__(self, granularity: int = 1,
                 capacity: int = DEFAULT_CAPACITY,
                 trace_path: Optional[str] = None) -> None:
        self.tracer = Tracer(capacity=capacity)
        self.provenance = ProvenanceTracker(granularity=granularity)
        self.trace_path = trace_path

    def export(self) -> Optional[int]:
        """Write the trace to ``trace_path`` (None when no path is set)."""
        if self.trace_path is None:
            return None
        return self.tracer.export_jsonl(self.trace_path)


__all__ = [
    "AdaptiveSwitchEvent",
    "AlertEvent",
    "CheckpointEvent",
    "Counter",
    "DEFAULT_CAPACITY",
    "EVENT_TYPES",
    "Event",
    "FaultEvent",
    "Gauge",
    "Histogram",
    "IncidentReport",
    "InjectionEvent",
    "MetricsRegistry",
    "Observability",
    "ProvenanceTracker",
    "QuarantineEvent",
    "RollbackEvent",
    "ScaleEvent",
    "ServeRequestEvent",
    "SyscallEvent",
    "TaintOrigin",
    "TaintSourceEvent",
    "TaintStoreEvent",
    "ThreadSwitchEvent",
    "Tracer",
    "build_incident_report",
    "collect_machine",
    "incident_reports",
    "render_incidents",
]
