"""Counter/gauge/histogram registry for harness reports.

A tiny Prometheus-flavoured metrics registry: components register named
instruments, and :func:`collect_machine` aggregates one ``Machine``'s
perf counters, cache statistics, taint-bitmap population, per-policy
alert counts and per-role instrumentation cycles into a registry the
harness can ``render()`` or serialise with ``to_dict()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

Number = Union[int, float]


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    help: str = ""
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add a non-negative amount."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value."""

    name: str
    help: str = ""
    value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the value."""
        self.value = value


@dataclass
class Histogram:
    """Streaming distribution summary (count / sum / min / max)."""

    name: str
    help: str = ""
    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """Named instruments, rendered for humans or dumped for machines."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name, help)
        return inst

    def histogram(self, name: str, help: str = "") -> Histogram:
        """Get or create a histogram."""
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name, help)
        return inst

    def to_dict(self) -> Dict[str, Number]:
        """Flat name -> value dict (histograms expand to sub-keys)."""
        out: Dict[str, Number] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
        for name, hist in self.histograms.items():
            out[f"{name}.count"] = hist.count
            out[f"{name}.sum"] = hist.total
            out[f"{name}.mean"] = hist.mean
            if hist.minimum is not None:
                out[f"{name}.min"] = hist.minimum
                out[f"{name}.max"] = hist.maximum
        return out

    def render(self, title: str = "metrics") -> str:
        """Aligned text table of every instrument."""
        rows: List[str] = [title, "-" * max(len(title), 8)]
        flat = self.to_dict()
        width = max((len(name) for name in flat), default=8)
        for name in sorted(flat):
            value = flat[name]
            shown = f"{value:,.2f}" if isinstance(value, float) else f"{value:,}"
            rows.append(f"{name:<{width}}  {shown}")
        return "\n".join(rows)


# -- machine aggregation ------------------------------------------------


def _bitmap_population(machine) -> int:
    """Tainted granules recorded in the region-0 tag bitmap."""
    from repro.mem.address import region_of, tag_space_limit
    from repro.mem.memory import PAGE_BITS

    taint_map = machine.taint_map
    if taint_map.counter_authoritative:
        # Every tag write is funneled through the incremental counter
        # (host summaries and guest stores alike), so the O(n) page
        # scan below is only a fallback for bare taint maps.
        return taint_map.live_granules
    granularity = taint_map.granularity
    limit = tag_space_limit(granularity)
    population = 0
    for page_no, page in machine.memory.iter_pages():
        base = page_no << PAGE_BITS
        if region_of(base) != 0 or base >= limit:
            continue
        if granularity == 1:
            # One tag *bit* per byte: count set bits.
            population += int.from_bytes(page, "little").bit_count()
        else:
            # One tag *byte* per word: count non-zero bytes.
            population += len(page) - page.count(0)
    return population


def collect_machine(machine, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Aggregate one machine's observable state into a registry."""
    reg = registry or MetricsRegistry()
    counters = machine.counters

    reg.counter("cpu.instructions", "retired instructions").value = counters.instructions
    reg.counter("cpu.cycles", "total simulated cycles").value = counters.cycles
    reg.counter("cpu.issue_cycles", "issue-group cycles").value = counters.issue_cycles
    reg.counter("cpu.stall_cycles", "cache + forwarding stalls").value = counters.stall_cycles
    reg.counter("cpu.branch_penalty_cycles", "taken-branch redirects").value = \
        counters.branch_penalty_cycles
    reg.counter("cpu.io_cycles", "device/syscall time").value = counters.io_cycles
    reg.counter("cpu.loads", "dynamic loads").value = counters.loads
    reg.counter("cpu.stores", "dynamic stores").value = counters.stores
    reg.counter("cpu.branches_taken", "taken branches").value = counters.branches_taken
    reg.counter("shift.instrumentation_cycles",
                "cycles attributed to any instrumentation role").value = \
        counters.instrumentation_cycles()
    for (role, _), _cost in counters.pair_costs.items():
        if role is not None:
            reg.counter(f"shift.role_cycles.{role}",
                        "cycles of one instrumentation role").value = \
                counters.role_cycles(role)

    for level_name, cache in (("l1", machine.cpu.caches.l1),
                              ("l2", machine.cpu.caches.l2),
                              ("l3", machine.cpu.caches.l3)):
        stats = cache.stats
        reg.counter(f"cache.{level_name}.accesses").value = stats.accesses
        reg.counter(f"cache.{level_name}.misses").value = stats.misses
        reg.gauge(f"cache.{level_name}.miss_rate").set(round(stats.miss_rate, 6))

    reg.gauge("mem.pages_touched", "sparse pages allocated").set(
        machine.memory.pages_touched())
    reg.gauge("taint.bitmap_population",
              "granules currently marked tainted").set(_bitmap_population(machine))
    reg.gauge("taint.live_bytes", "tainted bytes (incremental counter)").set(
        machine.taint_map.live_bytes)
    reg.gauge("taint.granularity").set(machine.taint_map.granularity)

    adaptive = getattr(machine, "adaptive", None)
    if adaptive is not None:
        reg.gauge("adaptive.mode", "1 = instrumented (track), 0 = fast").set(
            1 if adaptive.mode == "track" else 0)
        reg.counter("adaptive.switches_to_fast",
                    "track -> fast mode switches").value = adaptive.switches_to_fast
        reg.counter("adaptive.switches_to_track",
                    "fast -> track mode switches").value = adaptive.switches_to_track

    spec = getattr(machine, "spec", None)
    if spec is not None:
        reg.counter("adaptive.spec.epochs",
                    "speculation epochs entered").value = spec.epochs
        reg.counter("adaptive.spec.commits",
                    "epochs committed").value = spec.commits
        reg.counter("adaptive.spec.rollbacks",
                    "epochs rolled back and replayed in track").value = \
            spec.rollbacks
        reg.counter("adaptive.spec.committed_instructions",
                    "fast-path instructions retired under committed "
                    "epochs").value = spec.committed_instructions
        reg.counter("adaptive.spec.wasted_instructions",
                    "speculative instructions discarded by rollbacks").value = \
            spec.wasted_instructions
        reg.counter("adaptive.spec.deferred_sends",
                    "network sends buffered until commit").value = \
            spec.deferred_sends
        reg.counter("adaptive.spec.deferred_bytes",
                    "send bytes buffered until commit").value = \
            spec.deferred_bytes
        reg.gauge("adaptive.spec.active",
                  "1 while an epoch is open").set(1 if spec.active else 0)
        reg.gauge("adaptive.spec.watch_ranges",
                  "merged guard ranges of the live epoch").set(
            spec.watch_ranges)

    net = machine.net
    reg.gauge("net.pending", "connections still queued").set(len(net.pending))
    reg.counter("net.completed", "connections accepted").value = len(net.completed)
    reg.counter("net.quarantined", "connections quarantined by recovery").value = \
        len(net.quarantined)
    reg.counter("net.dropped",
                "requests refused at the bounded accept queue").value = net.dropped
    if net.capacity is not None:
        reg.gauge("net.capacity", "pending-queue bound").set(net.capacity)
    reg.counter("os.io_retries", "transient I/O errors absorbed").value = \
        machine.os.io_retries
    reg.counter("os.io_failures", "I/O ops that exhausted retries").value = \
        machine.os.io_failures

    reg.counter("alerts.total", "security alerts recorded").value = len(machine.alerts)
    for alert in machine.alerts:
        reg.counter(f"alerts.by_policy.{alert.policy_id}").inc()

    resil = getattr(machine, "resil", None)
    if resil is not None:
        reg.counter("resil.capture_count",
                    "checkpoints captured (full + delta)").value = \
            resil.checkpoints_taken
        reg.counter("resil.full_captures", "full base snapshots").value = \
            resil.full_captures
        reg.counter("resil.delta_captures", "COW delta snapshots").value = \
            resil.delta_captures
        reg.counter("resil.checkpoint_pages",
                    "memory pages captured across all checkpoints").value = \
            resil.pages_captured
        reg.counter("resil.checkpoint_bytes",
                    "page bytes captured across all checkpoints").value = \
            resil.bytes_captured
        reg.counter("resil.recoveries", "rollback recoveries").value = \
            resil.recoveries
        reg.gauge("resil.chain_length",
                  "snapshots in the live delta chain").set(len(resil.chain))
        if resil.checkpoints_taken:
            reg.gauge("resil.delta_ratio",
                      "fraction of checkpoints captured as deltas").set(
                round(resil.delta_captures / resil.checkpoints_taken, 6))

    threads = getattr(machine, "threads", None)
    if threads is not None:
        reg.counter("threads.context_switches").value = threads.context_switches
        reg.gauge("threads.count").set(len(threads.threads))

    obs = getattr(machine, "obs", None)
    if obs is not None:
        for name, value in obs.tracer.summary().items():
            reg.counter(f"trace.{name}").value = value
        reg.gauge("trace.origins", "taint origins recorded").set(
            len(obs.provenance.origins))
    return reg
