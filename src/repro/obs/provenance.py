"""Taint provenance: where did each tainted byte come from?

The taint bitmap answers *whether* a byte is tainted; this module keeps
the forensic complement: a numbered :class:`TaintOrigin` per taint
source event (source kind, stream label, byte range within that
stream), plus a sparse granule -> ``(origin_id, stream_offset)`` side
table mirroring the bitmap.  Wrap functions that copy taint
(``memcpy``) copy the side table too, so after an alert the engine can
say "this byte is byte 14 of network request #2".

Granularity mirrors the bitmap exactly: at word level one table entry
covers an 8-byte granule, so origins coarsen precisely as tags do — a
granule shared by two origins keeps whichever wrote it last, the same
over-approximation word-level tags introduce (paper 3.2.1).

Like the NaT register bits, taint that travels *through registers* is
not attributed per-byte; :meth:`ProvenanceTracker.live_origins` is the
conservative fallback the fault path uses (every origin whose taint is
still present in memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TaintOrigin:
    """One numbered taint-source occurrence."""

    origin_id: int
    source: str  # 'network' | 'file' | 'stdin' | 'manual'
    label: str  # request#N, file path, ...
    index: int  # 1-based stream index (request number, fd order)
    start: int  # first byte position within the source stream
    length: int  # number of bytes this origin covers

    @property
    def end(self) -> int:
        """One past the last stream byte covered."""
        return self.start + self.length

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for incident reports."""
        if self.length == 1:
            span = f"byte {self.start}"
        else:
            span = f"bytes {self.start}-{self.end - 1}"
        return f"origin #{self.origin_id}: {span} of {self.source} {self.label!r}"

    def to_dict(self) -> dict:
        """Machine-readable form."""
        return {
            "origin_id": self.origin_id,
            "source": self.source,
            "label": self.label,
            "index": self.index,
            "start": self.start,
            "length": self.length,
        }


class ProvenanceTracker:
    """Origin registry plus the granule -> origin side table."""

    def __init__(self, granularity: int = 1) -> None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self.origins: List[TaintOrigin] = []
        #: granule address -> (origin_id, stream offset of granule start).
        self._table: Dict[int, Tuple[int, int]] = {}

    def _granule(self, addr: int) -> int:
        return addr - (addr % self.granularity)

    def __len__(self) -> int:
        return len(self._table)

    # -- recording ------------------------------------------------------

    def record(self, source: str, label: str, index: int, addr: int,
               length: int, stream_offset: int = 0) -> TaintOrigin:
        """Register a new origin covering ``[addr, addr+length)``.

        ``stream_offset`` is the position of ``addr``'s byte within the
        source stream (e.g. how far into the request the ``recv`` was).

        Consecutive reads of the same stream coalesce into one origin
        (a byte-at-a-time ``recv`` loop yields "bytes 0-49 of request
        #1", not fifty one-byte origins).
        """
        origin = None
        if self.origins:
            last = self.origins[-1]
            if (last.source == source and last.label == label
                    and last.index == index and last.end == stream_offset):
                origin = TaintOrigin(last.origin_id, source, label, index,
                                     last.start, last.length + length)
                self.origins[-1] = origin
        if origin is None:
            origin = TaintOrigin(
                origin_id=len(self.origins) + 1,
                source=source,
                label=label,
                index=index,
                start=stream_offset,
                length=length,
            )
            self.origins.append(origin)
        if length > 0:
            step = self.granularity
            granule = self._granule(addr)
            last = addr + length - 1
            while granule <= last:
                # Word-level granules that start before ``addr`` coarsen
                # to the origin's first byte, exactly as the tag does.
                offset = max(granule, addr) - addr + stream_offset
                self._table[granule] = (origin.origin_id, offset)
                granule += step
        return origin

    def clear_range(self, addr: int, length: int) -> None:
        """Forget origins for granules in ``[addr, addr+length)``."""
        if length <= 0:
            return
        step = self.granularity
        granule = self._granule(addr)
        last = addr + length - 1
        while granule <= last:
            self._table.pop(granule, None)
            granule += step

    def copy_range(self, dst: int, src: int, length: int) -> None:
        """Propagate origin attribution for a taint-copying wrap function."""
        if length <= 0:
            return
        step = self.granularity
        # Snapshot first so overlapping moves behave like memmove.
        entries = []
        granule = self._granule(dst)
        src_delta = src - dst
        last = dst + length - 1
        while granule <= last:
            entries.append((granule, self._table.get(self._granule(granule + src_delta))))
            granule += step
        for granule, entry in entries:
            if entry is None:
                self._table.pop(granule, None)
            else:
                self._table[granule] = entry

    # -- queries --------------------------------------------------------

    def get(self, origin_id: int) -> Optional[TaintOrigin]:
        """Origin by id (ids are 1-based)."""
        if 1 <= origin_id <= len(self.origins):
            return self.origins[origin_id - 1]
        return None

    def origin_at(self, addr: int) -> Optional[Tuple[TaintOrigin, int]]:
        """``(origin, stream_offset)`` attributed to ``addr``, or None.

        The returned stream offset is for ``addr``'s own byte (granule
        offset plus the byte's position inside the granule, clamped to
        the origin's range at word level).
        """
        granule = self._granule(addr)
        entry = self._table.get(granule)
        if entry is None:
            return None
        origin_id, granule_offset = entry
        origin = self.get(origin_id)
        if origin is None:
            return None
        offset = min(granule_offset + (addr - granule), origin.end - 1)
        return origin, offset

    def origins_in_range(self, addr: int, length: int) -> List[TaintOrigin]:
        """Distinct origins attributed inside ``[addr, addr+length)``.

        Ordered by first appearance in the range.
        """
        seen: Dict[int, TaintOrigin] = {}
        if length > 0:
            step = self.granularity
            granule = self._granule(addr)
            last = addr + length - 1
            while granule <= last:
                entry = self._table.get(granule)
                if entry is not None and entry[0] not in seen:
                    origin = self.get(entry[0])
                    if origin is not None:
                        seen[entry[0]] = origin
                granule += step
        return list(seen.values())

    def live_origins(self) -> List[TaintOrigin]:
        """Origins with at least one granule still attributed to them."""
        live = {origin_id for origin_id, _ in self._table.values()}
        return [o for o in self.origins if o.origin_id in live]
