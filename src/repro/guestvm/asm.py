"""MiniScript: a tiny scripting language compiled to stack bytecode.

MiniScript is the guest-side scripting language of the interpreter-
under-DIFT experiments: request handlers for the MiniScript VM (a
stack-bytecode interpreter written in MiniC, see
:mod:`repro.apps.guestvm`).  This module is the *host-side* toolchain —
a compiler from MiniScript source text to the compact binary container
the VM executes.  The container is embedded into the VM's MiniC source
as a ``char code[]`` initialiser, so the script is ordinary static
guest data and the only tainted bytes in the system are the ones that
arrive over the simulated network at run time.

Language summary (one request handler per program)::

    # comments run to end of line
    let name = expr;          # declare a variable (global slot)
    name = expr;              # assign
    if expr { ... } else if expr { ... } else { ... }
    while expr { ... }
    emit(expr);               # append to the HTTP response body
    sql(expr);                # execute a SQL string     (H3 use point)
    sqlparam(query, param);   # parameterized query: the param is bound
                              # out of band and never enters the string
    system(expr);             # run a shell command   (H4 use point)
    kvset(key, value);        # persistent key-value store
    log(expr);                # guest console
    name();                   # call a `def` block
    def name { ... }          # zero-argument procedure

    expr := int | "string" | arg | variable | (expr)
          | expr + - * / % expr          # + concatenates strings
          | expr == != < <= > >= expr
          | -expr
          | len(s) | char(s, i) | find(s, sub) | slice(s, a, b)
          | int(s) | str(i) | escape(s) | kvget(key)

``arg`` is the raw request string.  ``+`` is polymorphic: two ints add,
anything involving a string concatenates (ints are rendered first).
``==``/``!=`` compare strings by bytes and ints by value.  ``escape``
is HTML entity escaping — the control arm of the XSS (H5) experiment.

The compiler is deliberately conventional — tokenizer, recursive
descent, single-pass codegen with jump backpatching — so the emphasis
stays on the system property being tested: taint flowing *through* the
VM's fetch/decode/dispatch loop with origins intact.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Container magic ("MiniScript Bytecode v1").
MAGIC = b"MSB1"
#: Container format version.
VERSION = 1

#: Capacity limits mirroring the MiniC VM's fixed tables
#: (:data:`repro.apps.guestvm.GUESTVM_TEMPLATE`).  The compiler enforces
#: them so a script that assembles is a script the VM can run.
MAX_CONSTS = 48
MAX_SLOTS = 32
MAX_FUNCS = 12
MAX_CODE = 60_000


class MiniScriptError(ValueError):
    """A MiniScript program that cannot be compiled."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class Op(enum.IntEnum):
    """The MiniScript VM's opcode set (one byte each)."""

    HALT = 0
    PUSHI = 1    # i32 immediate
    PUSHC = 2    # u8 constant-pool index
    ARG = 3      # push the request string
    LOAD = 4     # u8 slot
    STORE = 5    # u8 slot
    DUP = 6
    POP = 7
    ADD = 8      # polymorphic: int+int adds, otherwise concatenates
    SUB = 9
    MUL = 10
    DIV = 11
    MOD = 12
    EQ = 13      # polymorphic: string==string compares bytes
    NE = 14
    LT = 15
    LE = 16
    GT = 17
    GE = 18
    JMP = 19     # u16 absolute code offset
    JZ = 20      # u16 absolute code offset
    LEN = 21
    INDEX = 22   # char(s, i)
    FIND = 23
    SLICE = 24
    TOINT = 25
    TOSTR = 26
    ESCAPE = 27  # HTML entity escaping
    KVGET = 28
    KVSET = 29
    SQL = 30     # sql_exec use point (policy H3)
    SQLP = 31    # parameterized: executes the query, binds the param
    EMIT = 32    # append to the response body (policy H5 fires at send)
    LOG = 33
    CALL = 34    # u8 function index
    RET = 35
    SYSTEM = 36  # system() shell-out use point (policy H4)


#: Operand widths in bytes, for the disassembler and the VM's decoder.
OPERAND_WIDTH: Dict[Op, int] = {
    Op.PUSHI: 4,
    Op.PUSHC: 1,
    Op.LOAD: 1,
    Op.STORE: 1,
    Op.JMP: 2,
    Op.JZ: 2,
    Op.CALL: 1,
}

#: expression builtins: name -> (opcode, arity).
_EXPR_BUILTINS: Dict[str, Tuple[Op, int]] = {
    "len": (Op.LEN, 1),
    "char": (Op.INDEX, 2),
    "find": (Op.FIND, 2),
    "slice": (Op.SLICE, 3),
    "int": (Op.TOINT, 1),
    "str": (Op.TOSTR, 1),
    "escape": (Op.ESCAPE, 1),
    "kvget": (Op.KVGET, 1),
}

#: statement builtins: name -> (opcode, arity).  They leave an int on
#: the stack that the statement form pops.
_STMT_BUILTINS: Dict[str, Tuple[Op, int]] = {
    "emit": (Op.EMIT, 1),
    "sql": (Op.SQL, 1),
    "sqlparam": (Op.SQLP, 2),
    "kvset": (Op.KVSET, 2),
    "log": (Op.LOG, 1),
    "system": (Op.SYSTEM, 1),
}

_KEYWORDS = ("let", "if", "else", "while", "def", "arg")

_BINOPS = {
    "==": Op.EQ, "!=": Op.NE, "<": Op.LT, "<=": Op.LE,
    ">": Op.GT, ">=": Op.GE,
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
}

#: Precedence tiers, loosest first.
_PREC: Tuple[Tuple[str, ...], ...] = (
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("+", "-"),
    ("*", "/", "%"),
)


@dataclass
class _Token:
    kind: str  # 'ident' | 'number' | 'string' | 'op' | 'eof'
    value: object
    line: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    i, line = 0, 1
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if c == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(_Token("ident", source[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(_Token("number", int(source[i:j]), line))
            i = j
            continue
        if c == '"':
            j = i + 1
            out = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    out.append({"n": "\n", "t": "\t", '"': '"',
                                "\\": "\\"}.get(esc, esc))
                    j += 2
                    continue
                out.append(source[j])
                j += 1
            if j >= n:
                raise MiniScriptError("unterminated string literal", line)
            tokens.append(_Token("string", "".join(out), line))
            i = j + 1
            continue
        two = source[i:i + 2]
        if two in ("==", "!=", "<=", ">="):
            tokens.append(_Token("op", two, line))
            i += 2
            continue
        if c in "+-*/%<>=(){},;":
            tokens.append(_Token("op", c, line))
            i += 1
            continue
        raise MiniScriptError(f"unexpected character {c!r}", line)
    tokens.append(_Token("eof", None, line))
    return tokens


@dataclass
class Assembled:
    """A compiled MiniScript program."""

    blob: bytes
    consts: List[bytes]
    code: bytes
    funcs: Dict[str, int]          # name -> code offset
    slots: Dict[str, int]          # variable name -> slot index

    @property
    def entry_length(self) -> int:
        """Bytes of top-level (handler) code before the first def."""
        return min(self.funcs.values(), default=len(self.code))


class _Compiler:
    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.pos = 0
        self.code = bytearray()
        self.consts: List[bytes] = []
        self._const_index: Dict[bytes, int] = {}
        self.slots: Dict[str, int] = {}
        self.func_order: List[str] = []        # index -> name
        self.func_addr: Dict[str, int] = {}    # name -> code offset
        self._call_sites: List[Tuple[int, str, int]] = []  # offset, name, line

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.current
        self.pos += 1
        return token

    def at_op(self, op: str) -> bool:
        return self.current.kind == "op" and self.current.value == op

    def expect_op(self, op: str) -> None:
        if not self.at_op(op):
            raise MiniScriptError(
                f"expected {op!r}, got {self.current.value!r}",
                self.current.line)
        self.advance()

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise MiniScriptError(
                f"expected a name, got {self.current.value!r}",
                self.current.line)
        return self.advance().value

    # -- emission ----------------------------------------------------------

    def emit(self, op: Op) -> None:
        self.code.append(int(op))

    def emit_u8(self, op: Op, value: int) -> None:
        self.code.append(int(op))
        self.code.append(value & 0xFF)

    def emit_i32(self, op: Op, value: int) -> None:
        self.code.append(int(op))
        self.code.extend(struct.pack("<i", value))

    def emit_jump(self, op: Op, target: int = 0) -> int:
        """Emit a jump; returns the operand offset for backpatching."""
        self.code.append(int(op))
        site = len(self.code)
        self.code.extend(struct.pack("<H", target))
        return site

    def patch(self, site: int, target: Optional[int] = None) -> None:
        value = len(self.code) if target is None else target
        self.code[site:site + 2] = struct.pack("<H", value)

    def intern_const(self, data: bytes, line: int) -> int:
        index = self._const_index.get(data)
        if index is None:
            if len(self.consts) >= MAX_CONSTS:
                raise MiniScriptError(
                    f"too many string constants (max {MAX_CONSTS})", line)
            index = len(self.consts)
            self.consts.append(data)
            self._const_index[data] = index
        return index

    def slot_of(self, name: str, line: int, declare: bool = False) -> int:
        slot = self.slots.get(name)
        if slot is None:
            if not declare:
                raise MiniScriptError(f"undeclared variable {name!r}", line)
            if len(self.slots) >= MAX_SLOTS:
                raise MiniScriptError(
                    f"too many variables (max {MAX_SLOTS})", line)
            slot = len(self.slots)
            self.slots[name] = slot
        elif declare:
            raise MiniScriptError(f"variable {name!r} already declared", line)
        return slot

    # -- program structure ----------------------------------------------

    def compile(self) -> Assembled:
        deferred: List[Tuple[str, int]] = []  # (name, token position)
        # First pass over top-level statements; defs are deferred so the
        # handler body is a contiguous prefix ending in HALT.
        while self.current.kind != "eof":
            if self.current.kind == "ident" and self.current.value == "def":
                line = self.current.line
                self.advance()
                name = self.expect_ident()
                if name in self.func_addr or name in (
                        n for n, _ in deferred):
                    raise MiniScriptError(
                        f"function {name!r} already defined", line)
                if len(self.func_order) + len(deferred) >= MAX_FUNCS:
                    raise MiniScriptError(
                        f"too many functions (max {MAX_FUNCS})", line)
                deferred.append((name, self.pos))
                self._skip_block(line)
                continue
            self.statement()
        self.emit(Op.HALT)
        for name, pos in deferred:
            self.func_order.append(name)
            self.func_addr[name] = len(self.code)
            saved = self.pos
            self.pos = pos
            self.block()
            self.pos = saved
            self.emit(Op.RET)
        self._resolve_calls()
        if len(self.code) > MAX_CODE:
            raise MiniScriptError(f"program too large (max {MAX_CODE} bytes)")
        return Assembled(
            blob=_pack(self.consts, self.func_order, self.func_addr,
                       bytes(self.code)),
            consts=list(self.consts),
            code=bytes(self.code),
            funcs=dict(self.func_addr),
            slots=dict(self.slots),
        )

    def _skip_block(self, line: int) -> None:
        """Skip a brace-balanced block without compiling it."""
        if not self.at_op("{"):
            raise MiniScriptError("expected '{' after def name", line)
        depth = 0
        while True:
            token = self.current
            if token.kind == "eof":
                raise MiniScriptError("unterminated def block", line)
            self.advance()
            if token.kind == "op" and token.value == "{":
                depth += 1
            elif token.kind == "op" and token.value == "}":
                depth -= 1
                if depth == 0:
                    return

    def _resolve_calls(self) -> None:
        for offset, name, line in self._call_sites:
            if name not in self.func_addr:
                raise MiniScriptError(f"call to undefined def {name!r}", line)
            self.code[offset] = self.func_order.index(name)

    # -- statements -----------------------------------------------------------

    def block(self) -> None:
        self.expect_op("{")
        while not self.at_op("}"):
            if self.current.kind == "eof":
                raise MiniScriptError("unterminated block", self.current.line)
            self.statement()
        self.advance()

    def statement(self) -> None:
        token = self.current
        if token.kind != "ident":
            raise MiniScriptError(
                f"expected a statement, got {token.value!r}", token.line)
        name = token.value
        if name == "let":
            self.advance()
            var = self.expect_ident()
            self.expect_op("=")
            self.expression()
            self.emit_u8(Op.STORE, self.slot_of(var, token.line, declare=True))
            self.expect_op(";")
            return
        if name == "if":
            self._if_statement()
            return
        if name == "while":
            self.advance()
            top = len(self.code)
            self.expression()
            exit_site = self.emit_jump(Op.JZ)
            self.block()
            self.emit_jump(Op.JMP, top)
            self.patch(exit_site)
            return
        if name == "def":
            raise MiniScriptError("def blocks must be at top level",
                                  token.line)
        if name in _STMT_BUILTINS:
            self.advance()
            op, arity = _STMT_BUILTINS[name]
            self._call_args(name, arity, token.line)
            self.emit(op)
            self.emit(Op.POP)
            self.expect_op(";")
            return
        # assignment or user call
        self.advance()
        if self.at_op("("):
            self.advance()
            self.expect_op(")")
            self.expect_op(";")
            site = len(self.code) + 1
            self.emit_u8(Op.CALL, 0)
            self._call_sites.append((site, name, token.line))
            return
        self.expect_op("=")
        self.expression()
        self.emit_u8(Op.STORE, self.slot_of(name, token.line))
        self.expect_op(";")

    def _if_statement(self) -> None:
        self.advance()  # if
        self.expression()
        false_site = self.emit_jump(Op.JZ)
        self.block()
        if self.current.kind == "ident" and self.current.value == "else":
            self.advance()
            end_site = self.emit_jump(Op.JMP)
            self.patch(false_site)
            if self.current.kind == "ident" and self.current.value == "if":
                self._if_statement()
            else:
                self.block()
            self.patch(end_site)
        else:
            self.patch(false_site)

    def _call_args(self, name: str, arity: int, line: int) -> None:
        self.expect_op("(")
        for i in range(arity):
            self.expression()
            if i + 1 < arity:
                self.expect_op(",")
        if not self.at_op(")"):
            raise MiniScriptError(
                f"{name}() takes exactly {arity} argument(s)", line)
        self.advance()

    # -- expressions -------------------------------------------------------

    def expression(self, tier: int = 0) -> None:
        if tier >= len(_PREC):
            self._unary()
            return
        self.expression(tier + 1)
        while self.current.kind == "op" and self.current.value in _PREC[tier]:
            op = self.advance().value
            self.expression(tier + 1)
            self.emit(_BINOPS[op])

    def _unary(self) -> None:
        if self.at_op("-"):
            line = self.advance().line
            self.emit_i32(Op.PUSHI, 0)
            self._unary()
            self.emit(Op.SUB)
            return
        self._primary()

    def _primary(self) -> None:
        token = self.current
        if token.kind == "number":
            self.advance()
            self.emit_i32(Op.PUSHI, token.value)
            return
        if token.kind == "string":
            self.advance()
            index = self.intern_const(token.value.encode("latin-1"),
                                      token.line)
            self.emit_u8(Op.PUSHC, index)
            return
        if token.kind == "op" and token.value == "(":
            self.advance()
            self.expression()
            self.expect_op(")")
            return
        if token.kind == "ident":
            name = token.value
            if name == "arg":
                self.advance()
                self.emit(Op.ARG)
                return
            if name in _EXPR_BUILTINS:
                self.advance()
                op, arity = _EXPR_BUILTINS[name]
                self._call_args(name, arity, token.line)
                self.emit(op)
                return
            if name in _STMT_BUILTINS or name in _KEYWORDS:
                raise MiniScriptError(
                    f"{name!r} cannot be used in an expression", token.line)
            self.advance()
            self.emit_u8(Op.LOAD, self.slot_of(name, token.line))
            return
        raise MiniScriptError(
            f"expected an expression, got {token.value!r}", token.line)


def _pack(consts: List[bytes], func_order: List[str],
          func_addr: Dict[str, int], code: bytes) -> bytes:
    """Serialize the bytecode container the MiniC VM boots from."""
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out.append(len(consts))
    out.append(len(func_order))
    out.append(0)  # reserved
    out += struct.pack("<H", len(code))
    for const in consts:
        out += struct.pack("<H", len(const))
        out += const
    for name in func_order:
        out += struct.pack("<H", func_addr[name])
    out += code
    return bytes(out)


def assemble(source: str) -> Assembled:
    """Compile MiniScript source into its bytecode container."""
    return _Compiler(source).compile()


def disassemble(blob: bytes) -> str:
    """Human-readable listing of a bytecode container (for tests/docs)."""
    if blob[:4] != MAGIC:
        raise MiniScriptError("not a MiniScript container")
    version, nconsts, nfuncs = blob[4], blob[5], blob[6]
    code_len = struct.unpack_from("<H", blob, 8)[0]
    pos = 10
    consts: List[bytes] = []
    for _ in range(nconsts):
        length = struct.unpack_from("<H", blob, pos)[0]
        consts.append(blob[pos + 2:pos + 2 + length])
        pos += 2 + length
    funcs = []
    for _ in range(nfuncs):
        funcs.append(struct.unpack_from("<H", blob, pos)[0])
        pos += 2
    code = blob[pos:pos + code_len]
    lines = [f"; MSB v{version}: {nconsts} consts, {nfuncs} funcs, "
             f"{code_len} code bytes"]
    for i, const in enumerate(consts):
        lines.append(f"; const[{i}] = {const!r}")
    entries = {addr: f"func{idx}" for idx, addr in enumerate(funcs)}
    i = 0
    while i < len(code):
        if i in entries:
            lines.append(f"{entries[i]}:")
        op = Op(code[i])
        width = OPERAND_WIDTH.get(op, 0)
        operand = ""
        if width == 1:
            operand = f" {code[i + 1]}"
        elif width == 2:
            operand = f" {struct.unpack_from('<H', code, i + 1)[0]}"
        elif width == 4:
            operand = f" {struct.unpack_from('<i', code, i + 1)[0]}"
        lines.append(f"  {i:5d}  {op.name}{operand}")
        i += 1 + width
    return "\n".join(lines)
