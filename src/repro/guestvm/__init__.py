"""Guest scripting under DIFT: the MiniScript toolchain (host side).

The hardest scenario for a dynamic information-flow tracker is taint
that survives a *guest interpreter's* dispatch loop: request bytes stop
being operands of the protected program and become data of a program
the protected program merely interprets.  Pattern-matching DIFT schemes
lose the thread at exactly this indirection; SHIFT's per-access
instrumentation does not, because the interpreter's own loads and
stores are instrumented like any other code.

This package is the host half of the proof: a small compiler
(:mod:`repro.guestvm.asm`) that turns MiniScript service programs into
a compact stack bytecode, which a MiniScript VM *written in MiniC and
compiled by our own SHIFT pipeline* executes as a guest application
(:mod:`repro.apps.guestvm`).  End-to-end campaigns live in
:mod:`repro.harness.guestbench`.
"""

from repro.guestvm.asm import (
    MiniScriptError,
    Op,
    assemble,
    disassemble,
)

__all__ = [
    "MiniScriptError",
    "Op",
    "assemble",
    "disassemble",
]
