"""Processor simulation: executor, faults, timing model."""

from repro.cpu.core import (
    BREAK_NATIVE_BASE,
    BREAK_SYSCALL,
    CODE_SLOT_BYTES,
    CPU,
    MASK64,
    code_address,
    code_index,
    to_signed,
)
from repro.cpu.faults import (
    Fault,
    IllegalInstructionFault,
    NaTConsumptionFault,
    PrivilegeFault,
    RunawayError,
)
from repro.cpu.perf import IssueConfig, IssueModel, PerfCounters, RoleCost

__all__ = [
    "BREAK_NATIVE_BASE",
    "BREAK_SYSCALL",
    "CODE_SLOT_BYTES",
    "CPU",
    "Fault",
    "IllegalInstructionFault",
    "IssueConfig",
    "IssueModel",
    "MASK64",
    "NaTConsumptionFault",
    "PerfCounters",
    "PrivilegeFault",
    "RoleCost",
    "RunawayError",
    "code_address",
    "code_index",
    "to_signed",
]
