"""Processor faults and guest-run control exceptions."""

from __future__ import annotations

from typing import Optional


class Fault(Exception):
    """Base class for architectural faults raised during execution."""

    def __init__(self, message: str, pc: int = -1, instr: Optional[object] = None) -> None:
        super().__init__(message)
        self.pc = pc
        self.instr = instr

    def at(self, pc: int, instr: object) -> "Fault":
        """Attach the faulting pc/instruction; returns self."""
        self.pc = pc
        self.instr = instr
        return self


class NaTConsumptionFault(Fault):
    """A NaT-tagged register was consumed by a non-speculative operation.

    SHIFT turns these hardware faults into security detections: a
    tainted load address is policy L1, a tainted store address is L2 and
    a tainted move to a branch register is L3 (paper Table 1).
    """

    KINDS = ("load_addr", "store_addr", "store_value", "branch_move", "ar_move")

    def __init__(self, kind: str, message: str = "") -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown NaT consumption kind {kind!r}")
        super().__init__(message or f"NaT consumption fault ({kind})")
        self.kind = kind


class GuestOOMFault(Fault):
    """The guest heap allocator exceeded its configured limit.

    Raised by ``Machine.heap_alloc`` instead of letting a runaway guest
    ``malloc`` loop exhaust *host* memory.  In ``recover`` mode the
    supervisor treats it like any other fault: roll back to the last
    checkpoint and quarantine the offending request.
    """

    def __init__(self, requested: int, in_use: int, limit: int) -> None:
        super().__init__(
            f"guest heap limit exceeded: requested {requested} bytes "
            f"with {in_use}/{limit} in use")
        self.requested = requested
        self.in_use = in_use
        self.limit = limit


class SpecGuardTrip(Fault):
    """A speculative fast-path access intersected a taint-range watch.

    Not a guest-visible fault: the speculation controller
    (:mod:`repro.spec`) catches it, rolls the machine back to the epoch
    entry checkpoint and replays the slice in track mode.  It rides the
    ``Fault`` plumbing so both engines' fused-block writeback and
    ``_fault_pc`` protocols locate the tripping instruction for free;
    the policy engine's fault hook ignores it (it only reacts to NaT
    consumption).
    """

    def __init__(self, addr: int, size: int, reason: str = "range") -> None:
        super().__init__(
            f"speculation guard trip ({reason}) at {addr:#x}+{size}")
        self.addr = addr
        self.size = size
        self.reason = reason


class IllegalInstructionFault(Fault):
    """Undefined operation or malformed break immediate."""


class PrivilegeFault(Fault):
    """Operation not allowed in the simulated user mode."""


class RunawayError(RuntimeError):
    """The guest exceeded its instruction budget (likely livelock)."""
