"""Timing model and performance counters.

The model is a W-wide in-order machine built around *issue groups*, the
way Itanium's EPIC pipeline consumes instruction bundles: consecutive
instructions issue together until a register dependency, a structural
limit (issue width, memory ports) or a taken branch closes the group.
Each closed group costs one cycle; cache misses and branch redirects add
stall cycles on top.

For the paper's Figure 9 the model attributes cycles to *roles*: every
instrumentation-inserted instruction is tagged (tag-address computation,
bitmap access, taint set/clear, compare relaxation, NaT-source
generation) and each group's cycle is divided equally among its member
instructions, so serial instrumentation chains — which form small groups
— are correctly charged more per instruction than code with ILP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.isa.instruction import Instruction, OpKind
from repro.isa.operands import RegClass


@dataclass
class IssueConfig:
    """Parameters of the EPIC-style issue-group timing model."""
    width: int = 6
    mem_ports: int = 2
    branch_penalty: int = 1  # extra cycles after a taken branch
    #: Compare -> dependent branch may issue in one group (Itanium rule).
    cmp_branch_same_group: bool = True
    #: Stall for a load that reads data a very recent store produced
    #: (store-to-load forwarding through the store buffer).  SHIFT's
    #: spill-then-reload NaT-clearing trick pays this on every use,
    #: which is why the paper calls set/clear-NaT "rather costly".
    store_forward_penalty: int = 6
    #: How many instructions a store stays hot in the store buffer.
    store_forward_window: int = 16


@dataclass
class RoleCost:
    """Cycles and slots attributed to one instrumentation role."""

    slots: int = 0
    issue_cycles: float = 0.0
    stall_cycles: float = 0.0

    @property
    def cycles(self) -> float:
        """Issue plus stall cycles for this role."""
        return self.issue_cycles + self.stall_cycles


class PerfCounters:
    """Aggregated execution statistics for one run.

    Cycle costs are attributed to ``(role, origin)`` pairs — e.g.
    ``("tag_compute", "load")`` is the tag-address arithmetic inserted
    for load instrumentation — which is exactly the breakdown the
    paper's Figure 9 reports.
    """

    def __init__(self) -> None:
        self.instructions = 0
        self.groups = 0
        self.issue_cycles = 0.0
        self.stall_cycles = 0.0
        self.branch_penalty_cycles = 0.0
        self.io_cycles = 0.0  # device/syscall/native time
        self.loads = 0
        self.stores = 0
        self.branches_taken = 0
        #: (role, origin) -> RoleCost
        self.pair_costs: Dict[Tuple[Optional[str], Optional[str]], RoleCost] = {}

    @property
    def cycles(self) -> float:
        """Total simulated cycles including device time."""
        return (
            self.issue_cycles
            + self.stall_cycles
            + self.branch_penalty_cycles
            + self.io_cycles
        )

    @property
    def compute_cycles(self) -> float:
        """Cycles excluding device time (the CPU-bound component)."""
        return self.issue_cycles + self.stall_cycles + self.branch_penalty_cycles

    def pair(self, role: Optional[str], origin: Optional[str]) -> RoleCost:
        """RoleCost bucket for a (role, origin) pair."""
        key = (role, origin)
        cost = self.pair_costs.get(key)
        if cost is None:
            cost = self.pair_costs[key] = RoleCost()
        return cost

    def role_cycles(self, role: Optional[str]) -> float:
        """Cycles attributed to one instrumentation role."""
        return sum(c.cycles for (r, _), c in self.pair_costs.items() if r == role)

    def origin_cycles(self, origin: Optional[str]) -> float:
        """Cycles attributed to one instrumentation origin."""
        return sum(c.cycles for (_, o), c in self.pair_costs.items() if o == origin)

    def instrumentation_cycles(self) -> float:
        """Cycles attributed to any instrumentation role."""
        return sum(c.cycles for (r, _), c in self.pair_costs.items() if r is not None)

    def add_io_cycles(self, cycles: float) -> None:
        """Charge device/syscall time."""
        self.io_cycles += cycles

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict summary of the headline counters."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": self.stall_cycles,
            "branch_penalty_cycles": self.branch_penalty_cycles,
            "io_cycles": self.io_cycles,
            "loads": self.loads,
            "stores": self.stores,
        }


#: Bit position of each register class in the dependency masks: GR take
#: bits 0-127, PR bits 128-191, BR bits 192-199, AR bits 200+.
_CLS_BIT = {RegClass.GR: 0, RegClass.PR: 128, RegClass.BR: 192, RegClass.AR: 200}
#: All predicate-register bits (for extracting predicate writes).
_PR_ALL = ((1 << 64) - 1) << 128
#: r0 and p0 are hardwired and never create dependencies.
_HARDWIRED = 1 | (1 << 128)


def _perf_meta(instr: Instruction) -> Tuple[int, int, int, bool, int, bool, int]:
    """Static issue metadata, cached on the instruction object.

    Register sets are encoded as integer bitmasks (one bit per
    architectural register, see ``_CLS_BIT``) so the per-dynamic-
    instruction dependency checks are single ``&``/``|`` operations.
    """
    reads = 0
    for r in instr.ins:
        reads |= 1 << (_CLS_BIT[r.cls] + r.index)
    writes = 0
    for r in instr.outs:
        writes |= 1 << (_CLS_BIT[r.cls] + r.index)
    if instr.qp:
        reads |= 1 << (128 + instr.qp)
    reads &= ~_HARDWIRED
    writes &= ~_HARDWIRED
    pr_writes = writes & _PR_ALL
    kind = instr.kind
    meta = (
        reads,
        writes,
        pr_writes,
        instr.is_mem,
        1 if kind is OpKind.LOAD else (2 if kind is OpKind.STORE else 0),
        kind is OpKind.BRANCH,
        # movl carries a 64-bit immediate and occupies two bundle slots
        # on real IA-64 (L+X unit); the instrumentation's tag-mask
        # constants make this cost matter.
        2 if instr.op == "movl" else 1,
    )
    instr._perf_meta = meta  # cached: instructions are reused every iteration
    return meta


class IssueModel:
    """Greedy in-order issue-group builder with role attribution."""

    def __init__(self, counters: PerfCounters, config: IssueConfig | None = None) -> None:
        self.counters = counters
        self.config = config or IssueConfig()
        #: Open group members as their RoleCost buckets (the bucket is
        #: resolved at issue time anyway, and storing it directly makes
        #: the close-time share attribution a plain attribute add).
        self._group: list[RoleCost] = []
        self._group_writes = 0  # register bitmask (see _perf_meta)
        self._group_pr_writes = 0
        self._group_mem = 0
        self._group_slots = 0

    def issue(self, instr: Instruction, mem_stall: float = 0.0, taken_branch: bool = False) -> None:
        """Account one dynamically executed instruction."""
        meta = getattr(instr, "_perf_meta", None)
        if meta is None:
            meta = _perf_meta(instr)
        reads, writes, pr_writes, is_mem, memkind, is_branch, slots = meta
        # conflict is the overlap between this instruction's registers
        # and the open group's writes; a branch is exempt when the
        # overlap is entirely predicate writes (cmp -> branch pairing).
        conflict = self._group_writes & (reads | writes)
        if (
            conflict
            and is_branch
            and self.config.cmp_branch_same_group
            and not (conflict & ~self._group_pr_writes)
        ):
            conflict = 0
        structural = (
            self._group_slots + slots > self.config.width
            or (is_mem and self._group_mem >= self.config.mem_ports)
        )
        if conflict or structural:
            self._close_group()
        c = self.counters
        cost = c.pair(instr.role, instr.origin)
        self._group.append(cost)
        self._group_slots += slots
        self._group_writes |= writes
        if pr_writes:
            self._group_pr_writes |= pr_writes
        if is_mem:
            self._group_mem += 1
        c.instructions += 1
        cost.slots += 1
        if memkind == 1:
            c.loads += 1
        elif memkind == 2:
            c.stores += 1
        if mem_stall:
            c.stall_cycles += mem_stall
            cost.stall_cycles += mem_stall
        if taken_branch:
            c.branches_taken += 1
            c.branch_penalty_cycles += self.config.branch_penalty
            self._close_group()

    def _close_group(self) -> None:
        group = self._group
        if not group:
            return
        c = self.counters
        c.groups += 1
        c.issue_cycles += 1.0
        share = 1.0 / len(group)
        for cost in group:
            cost.issue_cycles += share
        # Cleared in place: the predecoded engine's fused blocks bind the
        # list object itself, so its identity must never change.
        group.clear()
        self._group_writes = 0
        self._group_pr_writes = 0
        self._group_mem = 0
        self._group_slots = 0

    def flush(self) -> None:
        """Close any open group (call at end of run / before syscalls)."""
        self._close_group()


#: Public alias used by the predecoded engine, which replicates
#: ``IssueModel.issue`` inline inside its micro-op closures and needs the
#: same static metadata tuples (cached on the instruction) to stay
#: bit-identical with the reference accounting.
perf_meta = _perf_meta
