"""Executor for the IA-64-like ISA with deferred-exception (NaT) semantics.

This is the "speculative hardware" that SHIFT reuses: every general
register carries a NaT bit that ALU operations propagate OR-wise, a
speculative load (``ld8.s``) from an invalid address *defers* the
exception by setting the destination's NaT bit, ``chk.s`` branches to
recovery code when a NaT is present, and consuming a NaT register in a
non-speculative way (load/store address, plain store value, move to a
branch register) raises a NaT-consumption fault.  SHIFT's policy engine
turns those faults into security alerts.
"""

from __future__ import annotations

from dataclasses import dataclass as _dataclass
from typing import Callable, List, Optional

from repro.cpu.faults import (
    Fault,
    IllegalInstructionFault,
    NaTConsumptionFault,
    RunawayError,
    SpecGuardTrip,
)
from repro.cpu.perf import IssueConfig, IssueModel, PerfCounters
from repro.isa.instruction import Instruction, OpKind
from repro.isa.operands import NUM_BR, NUM_GR, NUM_PR
from repro.isa.program import Program
from repro.mem.address import REGION_CODE, is_implemented, make_address, offset_of
from repro.mem.cache import CacheHierarchy
from repro.mem.memory import MemoryError_, SparseMemory

MASK64 = (1 << 64) - 1


@_dataclass
class CpuContext:
    """Saved architectural state of one hardware context (thread)."""

    gr: list
    nat: list
    pr: list
    br: list
    unat: int
    pc: int

#: ``break`` immediates understood by the executor.
BREAK_SYSCALL = 0x100000
BREAK_NATIVE_BASE = 0x200000

#: Bytes of code-address space per instruction slot (synthetic; gives
#: every instruction a distinct region-1 address for branch registers).
CODE_SLOT_BYTES = 16


def code_address(index: int) -> int:
    """Region-1 virtual address of instruction slot ``index``."""
    return make_address(REGION_CODE, (index + 1) * CODE_SLOT_BYTES)


def code_index(addr: int) -> int:
    """Inverse of :func:`code_address`."""
    return offset_of(addr) // CODE_SLOT_BYTES - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _div(srcs):
    a, b = to_signed(srcs[0]), to_signed(srcs[1])
    if b == 0:
        return 0  # architectural choice: define x/0 = 0
    q = abs(a) // abs(b)
    return (-q if (a < 0) != (b < 0) else q) & MASK64


def _mod(srcs):
    a, b = to_signed(srcs[0]), to_signed(srcs[1])
    if b == 0:
        return 0
    r = abs(a) % abs(b)
    return (-r if a < 0 else r) & MASK64


def _shl(srcs):
    amt = srcs[1] & MASK64
    return (srcs[0] << amt) & MASK64 if amt < 64 else 0


def _shr(srcs):
    amt = srcs[1] & MASK64
    return (to_signed(srcs[0]) >> min(amt, 63)) & MASK64


def _shru(srcs):
    amt = srcs[1] & MASK64
    return srcs[0] >> amt if amt < 64 else 0


def _sxt(bits):
    top = 1 << (bits - 1)
    mask = (1 << bits) - 1

    def fn(srcs):
        value = srcs[0] & mask
        return (value - (mask + 1)) & MASK64 if value >= top else value

    return fn


#: Value semantics for every ALU opcode (inputs already masked to 64 bits).
_ALU_FUNCS = {
    "mov": lambda s: s[0],
    "add": lambda s: (s[0] + s[1]) & MASK64,
    "adds": lambda s: (s[0] + s[1]) & MASK64,
    "sub": lambda s: (s[0] - s[1]) & MASK64,
    "and": lambda s: s[0] & s[1],
    "andcm": lambda s: s[0] & ~s[1] & MASK64,
    "or": lambda s: s[0] | s[1],
    "xor": lambda s: s[0] ^ s[1],
    "mul": lambda s: (to_signed(s[0]) * to_signed(s[1])) & MASK64,
    "div": _div,
    "mod": _mod,
    "shl": _shl,
    "shr": _shr,
    "shr.u": _shru,
    "sxt1": _sxt(8),
    "sxt2": _sxt(16),
    "sxt4": _sxt(32),
    "zxt1": lambda s: s[0] & 0xFF,
    "zxt2": lambda s: s[0] & 0xFFFF,
    "zxt4": lambda s: s[0] & 0xFFFFFFFF,
}


class CPU:
    """One in-order core executing a :class:`Program`."""

    def __init__(
        self,
        program: Program,
        memory: SparseMemory,
        *,
        caches: Optional[CacheHierarchy] = None,
        counters: Optional[PerfCounters] = None,
        issue_config: Optional[IssueConfig] = None,
        syscall_handler: Optional[Callable[["CPU"], None]] = None,
        native_handler: Optional[Callable[["CPU", int], None]] = None,
        fault_hook: Optional[Callable[["CPU", Fault], None]] = None,
        engine: str = "predecoded",
    ) -> None:
        if engine not in ("predecoded", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.program = program
        self.memory = memory
        self.caches = caches or CacheHierarchy()
        self.counters = counters or PerfCounters()
        self.issue = IssueModel(self.counters, issue_config)
        self.syscall_handler = syscall_handler
        self.native_handler = native_handler
        self.fault_hook = fault_hook
        #: Optional obs tracer; only consulted on the fault path, so the
        #: per-instruction execute loop is identical with tracing off.
        self.tracer = None
        #: Optional tag-space store watch (Machine wires it to
        #: ``TaintMap.on_guest_tag_store``): called with (addr, size,
        #: value) before any store whose address is below ``tag_limit``,
        #: i.e. any store into the region-0 tag space.  Keeps the
        #: taint map's live-granule counter exact against instrumented
        #: bitmap updates.  None (the default) costs nothing: the
        #: predecoder only generates the check when a watch is set.
        self.tag_watch = None
        self.tag_limit = 0
        #: Speculation guard (repro.spec): watched virtual-address
        #: ranges, mutated *in place* (generated closures bind the list
        #: object).  Empty outside a speculative epoch, so the guard
        #: costs one falsy check per memory access.  ``spec_check``
        #: raises :class:`SpecGuardTrip` when ``[addr, addr+size)``
        #: intersects any watched range.
        self.spec_ranges: List = []

        def _spec_check(addr, size, _ranges=self.spec_ranges):
            for lo, hi in _ranges:
                if addr < hi and lo < addr + size:
                    raise SpecGuardTrip(addr, size)

        self.spec_check = _spec_check

        self.gr: List[int] = [0] * NUM_GR
        self.nat: List[bool] = [False] * NUM_GR
        self.pr: List[bool] = [False] * NUM_PR
        self.pr[0] = True
        self.br: List[int] = [0] * NUM_BR
        self.unat = 0

        self.pc = program.label_index(program.entry)
        self.halted = False
        self.exit_code = 0
        #: Set by natives (thread join/yield/lock) to end the current
        #: scheduling slice after the instruction completes.
        self.yield_requested = False
        self._dispatch = self._build_dispatch()
        #: Execution engine: "predecoded" runs micro-op closures built
        #: once per program (see repro.cpu.predecode); "reference" keeps
        #: the original dispatch-per-step loop for differential testing.
        self.engine = engine
        self._uops: Optional[list] = None
        self._fused: Optional[list] = None
        #: Faulting pc reported by fused blocks (which cover several
        #: instructions, so the block entry pc is not precise enough).
        self._fault_pc = 0
        #: Recent stores (addr, size, seq) for the store-to-load
        #: forwarding penalty (see IssueConfig.store_forward_penalty).
        self._recent_stores = []

    def _build_dispatch(self):
        from repro.isa.instruction import OPCODES as _OPS

        table = {}
        for op, (kind, _lat) in _OPS.items():
            if kind is OpKind.ALU:
                table[op] = self._exec_alu
            elif kind is OpKind.CMP:
                table[op] = self._exec_cmp
            elif kind is OpKind.LOAD:
                table[op] = self._exec_load
            elif kind is OpKind.STORE:
                table[op] = self._exec_store
            elif kind in (OpKind.BRANCH, OpKind.CHK):
                table[op] = self._exec_branch
            elif kind is OpKind.MOVBR:
                table[op] = self._exec_movbr
            elif kind is OpKind.MOVAR:
                table[op] = self._exec_movar
            elif kind is OpKind.SYS:
                table[op] = self._exec_break
            else:
                table[op] = self._exec_nop
        return table

    def _exec_nop(self, instr: Instruction) -> None:
        self.issue.issue(instr)
        self.pc += 1

    # ------------------------------------------------------------------
    # Register access helpers (used by the runtime and tests)

    def read_gr(self, index: int) -> int:
        """Read a general register (r0 reads as zero)."""
        return 0 if index == 0 else self.gr[index]

    def write_gr(self, index: int, value: int, nat: bool = False) -> None:
        """Write a general register and its NaT bit."""
        if index == 0:
            raise IllegalInstructionFault("write to r0")
        self.gr[index] = value & MASK64
        self.nat[index] = nat

    def read_nat(self, index: int) -> bool:
        """Read a register's NaT (taint) bit."""
        return False if index == 0 else self.nat[index]

    # ------------------------------------------------------------------

    def save_context(self) -> CpuContext:
        """Snapshot the architectural state (for thread switching)."""
        return CpuContext(gr=list(self.gr), nat=list(self.nat),
                          pr=list(self.pr), br=list(self.br),
                          unat=self.unat, pc=self.pc)

    def load_context(self, context: CpuContext) -> None:
        """Restore a previously saved architectural state."""
        self.gr[:] = context.gr
        self.nat[:] = context.nat
        self.pr[:] = context.pr
        self.br[:] = context.br
        self.unat = context.unat
        self.pc = context.pc
        self.issue.flush()  # a context switch drains the pipeline

    def run_slice(self, budget: int) -> int:
        """Execute up to ``budget`` instructions; returns instructions run.

        Stops early when the guest halts or a native requests a yield
        (thread blocking).  Used by the thread scheduler.
        """
        if self.engine == "predecoded":
            return self._run_slice_predecoded(budget)
        return self._run_slice_reference(budget)

    def run(self, max_instructions: int = 200_000_000) -> None:
        """Execute until the guest exits; raises on fault or runaway."""
        if self.engine == "predecoded":
            self._run_predecoded(max_instructions)
        else:
            self._run_reference(max_instructions)

    # -- reference engine (dispatch per step, hoisted loop) ---------------

    def _run_reference(self, max_instructions: int) -> None:
        code = self.program.code
        n = len(code)
        dispatch = self._dispatch
        pr = self.pr
        issue = self.issue.issue
        budget = max_instructions
        while not self.halted:
            if budget <= 0:
                raise RunawayError(
                    f"instruction budget exhausted at pc={self.pc} "
                    f"({code[self.pc] if 0 <= self.pc < n else '?'})"
                )
            budget -= 1
            pc = self.pc
            if not 0 <= pc < n:
                raise IllegalInstructionFault(f"pc out of range: {pc}")
            instr = code[pc]
            try:
                qp = instr.qp
                if qp and not pr[qp]:
                    issue(instr)
                    self.pc = pc + 1
                else:
                    dispatch[instr.op](instr)
            except Fault as fault:
                self._fault_abort(pc, fault)
        self.issue.flush()

    def _run_slice_reference(self, budget: int) -> int:
        counters = self.counters
        start = counters.instructions
        self.yield_requested = False
        code = self.program.code
        n = len(code)
        dispatch = self._dispatch
        pr = self.pr
        issue = self.issue.issue
        while (not self.halted and not self.yield_requested
               and counters.instructions - start < budget):
            pc = self.pc
            if not 0 <= pc < n:
                raise IllegalInstructionFault(f"pc out of range: {pc}")
            instr = code[pc]
            try:
                qp = instr.qp
                if qp and not pr[qp]:
                    issue(instr)
                    self.pc = pc + 1
                else:
                    dispatch[instr.op](instr)
            except Fault as fault:
                self._fault_abort(pc, fault)
        self.issue.flush()
        return counters.instructions - start

    # -- predecoded engine (micro-op closures) ----------------------------

    def _ensure_uops(self) -> list:
        from repro.cpu.predecode import predecode

        uops = self._uops = predecode(self)
        return uops

    def _ensure_fused(self) -> list:
        from repro.cpu.predecode import predecode_fused

        fused = self._fused = predecode_fused(self)
        return fused

    def _run_predecoded(self, max_instructions: int) -> None:
        if self.halted:
            self.issue.flush()
            return
        uops = self._uops
        if uops is None:
            uops = self._ensure_uops()
        fused = self._fused
        if fused is None:
            fused = self._ensure_fused()
        n = len(uops)
        counters = self.counters
        limit = counters.instructions + max_instructions
        # A fused block executes up to MAX_BLOCK instructions per call,
        # so the bulk loop stops short of the budget and a per-pc tail
        # loop enforces the exact exhaustion point.
        safe = limit - 64
        pc = self.pc
        while counters.instructions < safe:
            if not 0 <= pc < n:
                self.pc = pc
                raise IllegalInstructionFault(f"pc out of range: {pc}")
            blk = fused[pc]
            if blk is not None:
                try:
                    pc = blk(pc)
                except Fault as fault:
                    self._fault_abort(self._fault_pc, fault)
                except BaseException:
                    self.pc = pc
                    raise
                # Fused blocks return plain pcs; only a lazy trampoline
                # falling back to a break micro-op can return the
                # complemented sentinel (see below).
                if pc >= 0:
                    continue
            else:
                # Micro-ops return the next pc, or its bitwise
                # complement when the halted/yield flags may have
                # changed (only break micro-ops run handlers), so the
                # hot loop needs no per-step flag checks.
                try:
                    pc = uops[pc](pc)
                except Fault as fault:
                    self._fault_abort(pc, fault)
                except BaseException:
                    self.pc = pc
                    raise
            if pc < 0:
                pc = ~pc
                if self.halted:
                    self.pc = pc
                    self.issue.flush()
                    return
        self.pc = pc
        self._run_predecoded_tail(limit - counters.instructions)

    def _run_predecoded_tail(self, budget: int) -> None:
        """Per-pc loop with exact budget enforcement (rarely reached)."""
        uops = self._uops
        n = len(uops)
        code = self.program.code
        pc = self.pc
        while True:
            if budget <= 0:
                self.pc = pc
                raise RunawayError(
                    f"instruction budget exhausted at pc={pc} "
                    f"({code[pc] if 0 <= pc < n else '?'})"
                )
            budget -= 1
            if not 0 <= pc < n:
                self.pc = pc
                raise IllegalInstructionFault(f"pc out of range: {pc}")
            try:
                pc = uops[pc](pc)
            except Fault as fault:
                self._fault_abort(pc, fault)
            except BaseException:
                self.pc = pc
                raise
            if pc < 0:
                pc = ~pc
                if self.halted:
                    break
        self.pc = pc
        self.issue.flush()

    def _run_slice_predecoded(self, budget: int) -> int:
        counters = self.counters
        start = counters.instructions
        self.yield_requested = False
        if self.halted:
            self.issue.flush()
            return 0
        uops = self._uops
        if uops is None:
            uops = self._ensure_uops()
        n = len(uops)
        pc = self.pc
        limit = start + budget
        # Bulk of the slice: fused blocks, exactly as in the unsliced
        # run loop, so supervised (recover-mode) execution pays no
        # per-instruction dispatch tax.  Every path increments the
        # instruction counter 1:1, so stopping 64 short of the budget
        # (a fused block runs at most MAX_BLOCK < 64 instructions) and
        # finishing per-uop enforces the exact slice length.
        safe = limit - 64
        if counters.instructions < safe:
            fused = self._fused
            if fused is None:
                fused = self._ensure_fused()
            while counters.instructions < safe:
                if not 0 <= pc < n:
                    self.pc = pc
                    raise IllegalInstructionFault(f"pc out of range: {pc}")
                blk = fused[pc]
                if blk is not None:
                    try:
                        pc = blk(pc)
                    except Fault as fault:
                        self._fault_abort(self._fault_pc, fault)
                    except BaseException:
                        self.pc = pc
                        raise
                    if pc >= 0:
                        continue
                else:
                    try:
                        pc = uops[pc](pc)
                    except Fault as fault:
                        self._fault_abort(pc, fault)
                    except BaseException:
                        self.pc = pc
                        raise
                if pc < 0:
                    pc = ~pc
                    if self.halted or self.yield_requested:
                        self.pc = pc
                        self.issue.flush()
                        return counters.instructions - start
        # Exact tail (and the whole slice for small budgets).
        while counters.instructions < limit:
            if not 0 <= pc < n:
                self.pc = pc
                raise IllegalInstructionFault(f"pc out of range: {pc}")
            try:
                pc = uops[pc](pc)
            except Fault as fault:
                self._fault_abort(pc, fault)
            except BaseException:
                self.pc = pc
                raise
            if pc < 0:
                pc = ~pc
                if self.halted or self.yield_requested:
                    break
        self.pc = pc
        self.issue.flush()
        return counters.instructions - start

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction at the current pc (reference path)."""
        code = self.program.code
        pc = self.pc
        if not 0 <= pc < len(code):
            raise IllegalInstructionFault(f"pc out of range: {pc}")
        try:
            self._execute(code[pc])
        except Fault as fault:
            self._fault_abort(pc, fault)

    def step_fast(self) -> None:
        """Execute one instruction via the active engine.

        The thread scheduler's instrumentation drain uses this so that
        serialized-bitmap runs execute identical micro-ops to the bulk
        loop regardless of engine.
        """
        if self.engine != "predecoded":
            self.step()
            return
        uops = self._uops
        if uops is None:
            uops = self._ensure_uops()
        pc = self.pc
        if not 0 <= pc < len(uops):
            raise IllegalInstructionFault(f"pc out of range: {pc}")
        try:
            npc = uops[pc](pc)
        except Fault as fault:
            self._fault_abort(pc, fault)
        self.pc = npc if npc >= 0 else ~npc

    def _fault_abort(self, pc: int, fault: Fault) -> None:
        """Shared fault protocol: locate, trace, hook, re-raise."""
        instr = self.program.code[pc]
        self.pc = pc
        fault.at(pc, instr)
        if self.tracer is not None:
            from repro.obs.events import FaultEvent

            self.tracer.emit(FaultEvent(
                fault=type(fault).__name__,
                detail=getattr(fault, "kind", "") or str(fault),
                pc=pc,
                instruction=str(instr),
                instruction_count=self.counters.instructions,
            ))
            # Machine.run's incident-report backstop emits a terminal
            # event for any abort that lacks this marker.
            fault._obs_traced = True
        if self.fault_hook is not None:
            self.fault_hook(self, fault)
        raise fault

    # ------------------------------------------------------------------

    def _execute(self, instr: Instruction) -> None:
        if instr.qp and not self.pr[instr.qp]:
            # Predicated-off: no architectural effect but the slot is
            # still consumed (in-order EPIC pipeline).
            self.issue.issue(instr)
            self.pc += 1
            return
        self._dispatch[instr.op](instr)

    # -- ALU -----------------------------------------------------------

    def _exec_alu(self, instr: Instruction) -> None:
        op = instr.op
        dest = instr.outs[0].index
        if op == "movl":
            self.gr[dest] = (instr.imm or 0) & MASK64
            self.nat[dest] = False
        elif op == "settag":
            self.nat[dest] = True
        elif op == "cleartag":
            self.nat[dest] = False
        else:
            gr, nats = self.gr, self.nat
            nat = False
            srcs = []
            for r in instr.ins:
                i = r.index
                if i == 0:
                    srcs.append(0)
                else:
                    srcs.append(gr[i])
                    if nats[i]:
                        nat = True
            if instr.imm is not None:
                srcs.append(instr.imm & MASK64)
            if dest == 0:
                raise IllegalInstructionFault("write to r0")
            gr[dest] = _ALU_FUNCS[op](srcs)
            nats[dest] = nat
        self.issue.issue(instr)
        self.pc += 1

    # -- Compares and NaT tests -----------------------------------------

    _RELOPS = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: to_signed(a) < to_signed(b),
        "le": lambda a, b: to_signed(a) <= to_signed(b),
        "gt": lambda a, b: to_signed(a) > to_signed(b),
        "ge": lambda a, b: to_signed(a) >= to_signed(b),
        "ltu": lambda a, b: a < b,
        "geu": lambda a, b: a >= b,
    }

    def _exec_cmp(self, instr: Instruction) -> None:
        p_true, p_false = instr.outs[0].index, instr.outs[1].index
        if instr.op == "tnat":
            nat = self.read_nat(instr.ins[0].index)
            self._write_pr(p_true, nat)
            self._write_pr(p_false, not nat)
            self.issue.issue(instr)
            self.pc += 1
            return
        srcs = [self.read_gr(r.index) for r in instr.ins]
        if instr.imm is not None:
            srcs.append(instr.imm & MASK64)
        nat = any(self.read_nat(r.index) for r in instr.ins)
        taint_aware = instr.op.startswith("tcmp.")
        if nat and not taint_aware:
            # Itanium behaviour: a NaT source clears both predicates so
            # mis-speculated compares cannot commit state (paper 3.1).
            self._write_pr(p_true, False)
            self._write_pr(p_false, False)
        else:
            rel = instr.op.split(".", 1)[1]
            result = self._RELOPS[rel](srcs[0], srcs[1])
            self._write_pr(p_true, result)
            self._write_pr(p_false, not result)
        self.issue.issue(instr)
        self.pc += 1

    def _write_pr(self, index: int, value: bool) -> None:
        if index != 0:
            self.pr[index] = value

    # -- Memory ----------------------------------------------------------

    def _exec_load(self, instr: Instruction) -> None:
        addr_reg = instr.ins[0].index
        dest = instr.outs[0].index
        addr = self.read_gr(addr_reg)
        size = instr.access_size
        if instr.op == "ld8.s":
            # Control-speculative load: defer any exception into NaT.
            if self.read_nat(addr_reg) or not is_implemented(addr):
                self.write_gr(dest, 0, nat=True)
                self.issue.issue(instr)
                self.pc += 1
                return
            if self.spec_ranges:
                self.spec_check(addr, size)
            value = self.memory.load(addr, size)
            stall = self.caches.access(addr, size)
            self.write_gr(dest, value, nat=False)
            self.issue.issue(instr, mem_stall=stall)
            self.pc += 1
            return
        if self.read_nat(addr_reg):
            raise NaTConsumptionFault("load_addr")
        if self.spec_ranges:
            self.spec_check(addr, size)
        try:
            value = self.memory.load(addr, size)
        except MemoryError_ as exc:
            raise Fault(f"load fault: {exc}") from exc
        stall = self.caches.access(addr, size) + self._forwarding_stall(addr, size)
        nat = False
        if instr.op == "ld8.fill":
            nat = bool((self.unat >> ((addr >> 3) & 63)) & 1)
        self.write_gr(dest, value, nat=nat)
        self.issue.issue(instr, mem_stall=stall)
        self.pc += 1

    def _exec_store(self, instr: Instruction) -> None:
        addr_reg, value_reg = instr.ins[0].index, instr.ins[1].index
        addr = self.read_gr(addr_reg)
        size = instr.access_size
        if self.read_nat(addr_reg):
            raise NaTConsumptionFault("store_addr")
        if instr.op == "st8.spill":
            bit = (addr >> 3) & 63
            if self.read_nat(value_reg):
                self.unat |= 1 << bit
            else:
                self.unat &= ~(1 << bit)
        elif self.read_nat(value_reg):
            raise NaTConsumptionFault("store_value")
        if self.spec_ranges:
            self.spec_check(addr, size)
        if self.tag_watch is not None and addr < self.tag_limit:
            self.tag_watch(addr, size, self.read_gr(value_reg))
        try:
            self.memory.store(addr, size, self.read_gr(value_reg))
        except MemoryError_ as exc:
            raise Fault(f"store fault: {exc}") from exc
        recent = self._recent_stores
        recent.append((addr, size, self.counters.instructions))
        if len(recent) > 4:
            recent.pop(0)
        stall = self.caches.access(addr, size)
        self.issue.issue(instr, mem_stall=stall)
        self.pc += 1

    def _forwarding_stall(self, addr: int, size: int) -> float:
        """Penalty for loading data a very recent store produced."""
        config = self.issue.config
        if not self._recent_stores or not config.store_forward_penalty:
            return 0.0
        now = self.counters.instructions
        for st_addr, st_size, seq in self._recent_stores:
            if now - seq <= config.store_forward_window \
                    and addr < st_addr + st_size and st_addr < addr + size:
                return float(config.store_forward_penalty)
        return 0.0

    # -- Control flow ------------------------------------------------------

    def _exec_branch(self, instr: Instruction) -> None:
        op = instr.op
        if op == "chk.s":
            taken = self.read_nat(instr.ins[0].index)
            self.issue.issue(instr, taken_branch=taken)
            self.pc = self.program.label_index(instr.target) if taken else self.pc + 1
            return
        if op == "br" or op == "br.cond":
            self.issue.issue(instr, taken_branch=True)
            self.pc = self.program.label_index(instr.target)
            return
        if op == "br.call":
            self.br[instr.outs[0].index] = code_address(self.pc + 1)
            self.issue.issue(instr, taken_branch=True)
            self.pc = self.program.label_index(instr.target)
            return
        if op == "br.call.ind":
            target = code_index(self.br[instr.ins[0].index])
            self.br[instr.outs[0].index] = code_address(self.pc + 1)
            self.issue.issue(instr, taken_branch=True)
            self._jump_to(target)
            return
        if op in ("br.ret", "br.ind"):
            target = code_index(self.br[instr.ins[0].index])
            self.issue.issue(instr, taken_branch=True)
            self._jump_to(target)
            return
        raise IllegalInstructionFault(f"unhandled branch {op}")

    def _jump_to(self, index: int) -> None:
        if not 0 <= index < len(self.program.code):
            raise IllegalInstructionFault(f"indirect branch to invalid slot {index}")
        self.pc = index

    # -- Moves to/from BR and AR -------------------------------------------

    def _exec_movbr(self, instr: Instruction) -> None:
        if instr.op == "mov.tobr":
            src = instr.ins[0].index
            if self.read_nat(src):
                # Tainted control-flow target: policy L3 territory.
                raise NaTConsumptionFault("branch_move")
            self.br[instr.outs[0].index] = self.read_gr(src)
        else:  # mov.frombr
            self.write_gr(instr.outs[0].index, self.br[instr.ins[0].index], nat=False)
        self.issue.issue(instr)
        self.pc += 1

    def _exec_movar(self, instr: Instruction) -> None:
        if instr.op == "mov.toar":
            src = instr.ins[0].index
            if self.read_nat(src):
                raise NaTConsumptionFault("ar_move")
            self.unat = self.read_gr(src)
        else:  # mov.fromar
            self.write_gr(instr.outs[0].index, self.unat, nat=False)
        self.issue.issue(instr)
        self.pc += 1

    # -- Break (syscalls / natives) -----------------------------------------

    def _exec_break(self, instr: Instruction) -> None:
        self.issue.issue(instr)
        imm = instr.imm or 0
        if imm == BREAK_SYSCALL:
            if self.syscall_handler is None:
                raise IllegalInstructionFault("no syscall handler installed")
            self.issue.flush()
            self.syscall_handler(self)
            self.pc += 1
            return
        if imm >= BREAK_NATIVE_BASE:
            if self.native_handler is None:
                raise IllegalInstructionFault("no native handler installed")
            self.issue.flush()
            self.native_handler(self, imm - BREAK_NATIVE_BASE)
            self.pc += 1
            return
        raise IllegalInstructionFault(f"break {imm:#x}")
