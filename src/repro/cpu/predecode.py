"""Predecoded micro-op engine: compile instructions to closures once.

The reference interpreter pays a per-step tax that has nothing to do
with the guest's work: dict dispatch on the mnemonic, re-reading operand
``Reg`` objects, a ``getattr`` for cached issue metadata, and a method
call into :class:`~repro.cpu.perf.IssueModel` whose conflict masks and
config limits are re-fetched every instruction.  This module removes all
of it by *predecoding*: each :class:`Instruction` is compiled exactly
once into a specialized closure (a micro-op).  The closure body is
*generated source code* — operand indices, immediates, dependency
bitmasks, branch-target pcs and the issue-model limits are embedded as
literals, and the issue accounting is inlined straight into the body so
the hot path makes no calls besides memory/cache accesses.  Generated
factories are compiled once per unique shape (a process-wide cache), and
identical instructions share one closure.  ``CPU._run_predecoded`` then
just indexes a flat list and calls.

Micro-op contract: ``uop(pc) -> next_pc``.  Only break (SYS) micro-ops
can change ``halted``/``yield_requested`` (their handlers run the guest
OS), and those return ``~next_pc`` — a negative sentinel telling the run
loop to check the flags.  Every other micro-op returns the next pc
directly, so the hot loop carries no per-step flag loads.

Equivalence rules (enforced by tests/test_engine_differential.py):

* The inlined issue accounting is a literal replica of
  ``IssueModel.issue`` specialized by instruction kind, and it reads and
  writes the *same* ``IssueModel`` instance state (``_group`` and its
  bitmask friends), so reference ``step()`` calls — e.g. the thread
  scheduler's instrumentation drain — interleave exactly.
* ``pair_costs`` buckets are created lazily on first execution, never at
  predecode time, so the set of (role, origin) keys matches the
  reference run bit-for-bit.
* r0 sources are folded to the constant 0 with a clear NaT — exactly
  the reference semantics (``_exec_alu`` appends a literal 0 and skips
  the NaT read; ``_exec_cmp`` goes through ``read_gr``/``read_nat``).
* Anything with an unusual shape (r0 destinations, unresolvable labels,
  malformed operand lists, unknown mnemonics) falls back to a micro-op
  that delegates to ``CPU._execute`` — slower, but by construction
  identical, and safe to interleave because ``IssueModel.issue`` shares
  the same group state the generated accounting uses.
* Observability stays on the cold path: tracer/fault hooks are only
  consulted by the run loop's fault handler and the guest-OS handlers,
  exactly as in the reference loop.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.core import (
    _ALU_FUNCS,
    BREAK_NATIVE_BASE,
    BREAK_SYSCALL,
    CODE_SLOT_BYTES,
    CPU,
    MASK64,
    code_address,
    to_signed,
)
from repro.cpu.faults import Fault, IllegalInstructionFault, NaTConsumptionFault
from repro.cpu.perf import RoleCost, perf_meta
from repro.isa.instruction import Instruction, LOAD_SIZES, OP_KIND, OpKind, STORE_SIZES
from repro.mem.address import IMPL_MASK, is_implemented
from repro.mem.memory import MemoryError_

Uop = Callable[[int], int]

_M = hex(MASK64)

#: Generated-source -> compiled code object.  Process-wide: identical
#: instruction shapes across machines share one compilation.
_FACTORY_CACHE: dict = {}

#: Shared objects every generated factory receives (becoming closure
#: variables of the micro-op).  ``fn``/``handler`` are per-instruction.
_PARAMS = ("gr, nats, pr, br, im, counters, close, pair_costs, RoleCost, "
           "mem_load, mem_store, cache_access, fwd, recent, cpu, to_signed, "
           "is_implemented, NaTConsumptionFault, Fault, "
           "IllegalInstructionFault, MemoryError_, tag_watch, "
           "spec_ranges, spec_check, group, fn, handler, fns")


def _render(lines: List[str], cells=("cost",)) -> str:
    body = "".join(f"        {ln}\n" for ln in lines)
    decls = "".join(f"    {c} = None\n" for c in cells)
    shared = f"        nonlocal {', '.join(cells)}\n" if cells else ""
    return (
        f"def _f({_PARAMS}):\n"
        + decls +
        "    def uop(pc):\n"
        + shared
        + body +
        "    return uop\n"
    )


def _indent(lines: List[str]) -> List[str]:
    return ["    " + ln for ln in lines]


def _meta(instr: Instruction):
    meta = getattr(instr, "_perf_meta", None)
    if meta is None:
        meta = perf_meta(instr)
    return meta


def _acct_lines(meta, key, cfg, taken: Optional[bool] = None,
                stall: bool = False) -> List[str]:
    """Inline replica of ``IssueModel.issue`` for one static instruction.

    ``taken`` is None for non-branch kinds, else the (static) taken
    flag; ``stall`` emits the mem-stall attribution lines (the runtime
    value must be in a local named ``stall``).
    """
    reads, writes, prw, is_mem, memkind, is_branch, slots = meta
    rw = reads | writes
    conds = []
    lines = []
    if rw:
        lines.append("gw = im._group_writes")
        if taken is not None and is_branch and cfg.cmp_branch_same_group:
            # A branch conflicting only on predicate writes may issue in
            # the same group as the compare that produced them.
            conds.append(f"gw & {hex(rw)} & ~im._group_pr_writes")
        else:
            conds.append(f"gw & {hex(rw)}")
    conds.append(f"im._group_slots + {slots} > {cfg.width}")
    if is_mem:
        conds.append(f"im._group_mem >= {cfg.mem_ports}")
    lines += [
        "if " + " or ".join(conds) + ":",
        "    close()",
        "c = cost",
        "if c is None:",
        f"    c = pair_costs.get({key!r})",
        "    if c is None:",
        f"        c = pair_costs[{key!r}] = RoleCost()",
        "    cost = c",
        "im._group.append(c)",
        f"im._group_slots += {slots}",
    ]
    if writes:
        lines.append(f"im._group_writes |= {hex(writes)}")
    if prw:
        lines.append(f"im._group_pr_writes |= {hex(prw)}")
    if is_mem:
        lines.append("im._group_mem += 1")
    lines.append("counters.instructions += 1")
    lines.append("c.slots += 1")
    if memkind == 1:
        lines.append("counters.loads += 1")
    elif memkind == 2:
        lines.append("counters.stores += 1")
    if stall:
        lines += [
            "if stall:",
            "    counters.stall_cycles += stall",
            "    c.stall_cycles += stall",
        ]
    if taken:
        lines += [
            "counters.branches_taken += 1",
            f"counters.branch_penalty_cycles += {cfg.branch_penalty!r}",
            "close()",
        ]
    return lines


# -- operand descriptors ---------------------------------------------------
# A source operand is an int (a value known at predecode time: r0 or an
# immediate) or a str (a runtime expression like "gr[5]").

def _gr_src(i: int):
    return 0 if i == 0 else f"gr[{i}]"


def _s(d) -> str:
    return hex(d) if isinstance(d, int) else d


def _ts(d) -> str:
    return str(to_signed(d)) if isinstance(d, int) else f"to_signed({d})"


_UNARY = {"mov", "sxt1", "sxt2", "sxt4", "zxt1", "zxt2", "zxt4"}
_SIMPLE1 = {
    "mov": "{a}",
    "zxt1": "{a} & 0xFF",
    "zxt2": "{a} & 0xFFFF",
    "zxt4": "{a} & 0xFFFFFFFF",
}
_SIMPLE2 = {
    "add": "({a} + {b}) & {m}",
    "adds": "({a} + {b}) & {m}",
    "sub": "({a} - {b}) & {m}",
    "and": "{a} & {b}",
    "andcm": "{a} & ~{b} & {m}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "mul": "({sa} * {sb}) & {m}",
}
_SXT_BITS = {"sxt1": 8, "sxt2": 16, "sxt4": 32}

_REL_FMT = {
    "eq": "{a} == {b}",
    "ne": "{a} != {b}",
    "ltu": "{a} < {b}",
    "geu": "{a} >= {b}",
    "lt": "{sa} < {sb}",
    "le": "{sa} <= {sb}",
    "gt": "{sa} > {sb}",
    "ge": "{sa} >= {sb}",
}


def _alu_sem(op: str, dest: int, ins_idx, imm,
             fn_name: str = "fn") -> Optional[List[str]]:
    """Value + NaT lines for a generic ALU op, or None to fall back."""
    if op not in _ALU_FUNCS:
        return None
    srcs = [_gr_src(i) for i in ins_idx]
    if imm is not None:
        srcs.append(imm)
    if len(srcs) < (1 if op in _UNARY else 2):
        return None  # reference raises IndexError; fallback reproduces it
    if all(isinstance(d, int) for d in srcs):
        # Every source is known: fold through the reference ALU table.
        const = _ALU_FUNCS[op](srcs)
        val = [f"gr[{dest}] = {hex(const)}"]
    else:
        a = srcs[0]
        b = srcs[1] if len(srcs) > 1 else None
        if op in _SIMPLE1:
            val = [f"gr[{dest}] = " + _SIMPLE1[op].format(a=_s(a), m=_M)]
        elif op in _SIMPLE2:
            val = [f"gr[{dest}] = " + _SIMPLE2[op].format(
                a=_s(a), b=_s(b), sa=_ts(a), sb=_ts(b), m=_M)]
        elif op in _SXT_BITS:
            bits = _SXT_BITS[op]
            top, mask = 1 << (bits - 1), (1 << bits) - 1
            val = [
                f"v = {_s(a)} & {hex(mask)}",
                f"gr[{dest}] = (v - {hex(mask + 1)}) & {_M} "
                f"if v >= {hex(top)} else v",
            ]
        elif op == "shl":
            if isinstance(b, int):
                val = [f"gr[{dest}] = "
                       + (f"({_s(a)} << {b}) & {_M}" if b < 64 else "0")]
            else:
                val = [
                    f"b = {b}",
                    f"gr[{dest}] = ({_s(a)} << b) & {_M} if b < 64 else 0",
                ]
        elif op == "shr":
            if isinstance(b, int):
                val = [f"gr[{dest}] = ({_ts(a)} >> {b if b < 63 else 63})"
                       f" & {_M}"]
            else:
                val = [
                    f"b = {b}",
                    f"gr[{dest}] = ({_ts(a)} >> (b if b < 63 else 63))"
                    f" & {_M}",
                ]
        elif op == "shr.u":
            if isinstance(b, int):
                val = [f"gr[{dest}] = "
                       + (f"{_s(a)} >> {b}" if b < 64 else "0")]
            else:
                val = [
                    f"b = {b}",
                    f"gr[{dest}] = {_s(a)} >> b if b < 64 else 0",
                ]
        else:
            # div/mod (and anything new): call the reference lambda with
            # the full source tuple, exactly like _exec_alu.
            argsrc = ", ".join(_s(d) for d in srcs)
            if len(srcs) == 1:
                argsrc += ","
            val = [f"gr[{dest}] = {fn_name}(({argsrc}))"]
    terms = [f"nats[{i}]" for i in ins_idx if i]
    val.append(f"nats[{dest}] = " + (" or ".join(terms) or "False"))
    return val


def _tnat_sem(i0: int, pt: int, pf: int) -> List[str]:
    """Predicate-write lines for tnat (r0 source folds to a constant)."""
    if i0:
        if pt and pf:
            return [f"r = nats[{i0}]", f"pr[{pt}] = r", f"pr[{pf}] = not r"]
        if pt:
            return [f"pr[{pt}] = nats[{i0}]"]
        if pf:
            return [f"pr[{pf}] = not nats[{i0}]"]
        return []
    return [ln for ln in ((f"pr[{pt}] = False" if pt else None),
                          (f"pr[{pf}] = True" if pf else None)) if ln]


def _cmp_sem(op: str, pt: int, pf: int, ins_idx, imm) -> Optional[List[str]]:
    """Predicate-write lines for cmp/tcmp, or None to fall back."""
    if "." not in op:
        return None
    rel = op.split(".", 1)[1]
    if rel not in _REL_FMT:
        return None
    srcs = [_gr_src(i) for i in ins_idx]
    if imm is not None:
        srcs.append(imm)
    if len(srcs) < 2:
        return None
    a, b = srcs[0], srcs[1]
    if isinstance(a, int) and isinstance(b, int):
        rexpr = str(bool(CPU._RELOPS[rel](a, b)))
    else:
        rexpr = _REL_FMT[rel].format(a=_s(a), b=_s(b), sa=_ts(a), sb=_ts(b))
    if pt and pf:
        direct = [f"r = {rexpr}", f"pr[{pt}] = r", f"pr[{pf}] = not r"]
    elif pt:
        direct = [f"pr[{pt}] = {rexpr}"]
    elif pf:
        direct = [f"pr[{pf}] = not ({rexpr})"]
    else:
        direct = []
    terms = [f"nats[{i}]" for i in ins_idx if i]
    if op.startswith("tcmp.") or not terms or not direct:
        return direct
    # Itanium behaviour: a NaT source clears both predicates.
    clear = [ln for ln in ((f"pr[{pt}] = False" if pt else None),
                           (f"pr[{pf}] = False" if pf else None)) if ln]
    return (["if " + " or ".join(terms) + ":"]
            + _indent(clear)
            + ["else:"]
            + _indent(direct))


def _make_forwarding(cpu: CPU):
    """Replica of ``CPU._forwarding_stall`` with config bound as locals."""
    config = cpu.issue.config
    penalty = config.store_forward_penalty
    fpenalty = float(penalty)
    window = config.store_forward_window
    recent = cpu._recent_stores

    def fwd(addr, size, now):
        if not recent or not penalty:
            return 0.0
        for st_addr, st_size, seq in recent:
            if (now - seq <= window and addr < st_addr + st_size
                    and st_addr < addr + size):
                return fpenalty
        return 0.0

    return fwd


def _shared_args(cpu: CPU, fwd) -> tuple:
    """Positional args matching ``_PARAMS`` up to the per-instr slots."""
    im = cpu.issue
    counters = cpu.counters
    return (cpu.gr, cpu.nat, cpu.pr, cpu.br, im, counters, im._close_group,
            counters.pair_costs, RoleCost, cpu.memory.load, cpu.memory.store,
            cpu.caches.access, fwd, cpu._recent_stores, cpu, to_signed,
            is_implemented, NaTConsumptionFault, Fault,
            IllegalInstructionFault, MemoryError_, cpu.tag_watch,
            cpu.spec_ranges, cpu.spec_check, im._group)


def _make_fallback(cpu: CPU, instr: Instruction) -> Uop:
    """Delegate to the reference executor (identical by construction)."""
    execute = cpu._execute

    def fallback(pc):
        cpu.pc = pc
        execute(instr)
        return cpu.pc

    return fallback


def predecode(cpu: CPU) -> List[Uop]:
    """Compile every instruction of the CPU's program into a micro-op."""
    program = cpu.program
    code = program.code
    n = len(code)
    im = cpu.issue
    cfg = im.config
    counters = cpu.counters
    close = im._close_group
    fwd = _make_forwarding(cpu)
    syscall_handler = cpu.syscall_handler
    native_handler = cpu.native_handler
    label_index = program.label_index
    shared = _shared_args(cpu, fwd)
    uop_cache: dict = {}

    def resolve(label):
        try:
            return label_index(label)
        except Exception:
            return None  # fall back; the reference path reproduces the error

    def build(instr: Instruction, idx: int):
        """Return (body_lines, fn, handler) or None for fallback."""
        op = instr.op
        kind = OP_KIND[op]
        meta = _meta(instr)
        key = (instr.role, instr.origin)
        fn = handler = None
        body: Optional[List[str]] = None
        taken_none = _acct_lines(meta, key, cfg)

        if kind is OpKind.ALU:
            if not instr.outs:
                return None
            dest = instr.outs[0].index
            if op == "movl":
                imm = (instr.imm or 0) & MASK64
                body = [f"gr[{dest}] = {hex(imm)}", f"nats[{dest}] = False"]
            elif op == "settag":
                body = [f"nats[{dest}] = True"]
            elif op == "cleartag":
                body = [f"nats[{dest}] = False"]
            elif dest != 0:
                ins_idx = tuple(r.index for r in instr.ins)
                imm = instr.imm & MASK64 if instr.imm is not None else None
                body = _alu_sem(op, dest, ins_idx, imm)
                fn = _ALU_FUNCS.get(op)
            if body is None:
                return None
            body += taken_none + ["return pc + 1"]

        elif kind is OpKind.CMP:
            if len(instr.outs) != 2 or not instr.ins:
                return None
            pt, pf = instr.outs[0].index, instr.outs[1].index
            if op == "tnat":
                body = _tnat_sem(instr.ins[0].index, pt, pf)
            else:
                ins_idx = tuple(r.index for r in instr.ins)
                imm = instr.imm & MASK64 if instr.imm is not None else None
                body = _cmp_sem(op, pt, pf, ins_idx, imm)
            if body is None:
                return None
            body += taken_none + ["return pc + 1"]

        elif kind is OpKind.LOAD:
            if not instr.ins or not instr.outs:
                return None
            size = LOAD_SIZES[op]
            ia = instr.ins[0].index
            dest = instr.outs[0].index
            if dest == 0:
                return None  # reference faults in write_gr
            addr = _s(_gr_src(ia))
            nat_ia = f"nats[{ia}]" if ia else None
            if op == "ld8.s":
                defer = nat_ia + " or not is_implemented(addr)" if nat_ia \
                    else "not is_implemented(addr)"
                body = (
                    [f"addr = {addr}",
                     f"if {defer}:"]
                    + _indent([f"gr[{dest}] = 0",
                               f"nats[{dest}] = True"]
                              + _acct_lines(meta, key, cfg)
                              + ["return pc + 1"])
                    + ["if spec_ranges:",
                       f"    spec_check(addr, {size})",
                       f"value = mem_load(addr, {size})",
                       f"stall = cache_access(addr, {size})",
                       f"gr[{dest}] = value",
                       f"nats[{dest}] = False"]
                    + _acct_lines(meta, key, cfg, stall=True)
                    + ["return pc + 1"]
                )
            else:
                nat_line = (
                    [f"if {nat_ia}:",
                     "    raise NaTConsumptionFault(\"load_addr\")"]
                    if nat_ia else [])
                nat_dest = (
                    f"nats[{dest}] = bool((cpu.unat >> ((addr >> 3) & 63))"
                    " & 1)"
                    if op == "ld8.fill" else f"nats[{dest}] = False")
                body = (
                    [f"addr = {addr}"]
                    + nat_line
                    + ["if spec_ranges:",
                       f"    spec_check(addr, {size})",
                       "try:",
                       f"    value = mem_load(addr, {size})",
                       "except MemoryError_ as exc:",
                       "    raise Fault(f\"load fault: {exc}\") from exc",
                       f"stall = cache_access(addr, {size})"
                       f" + fwd(addr, {size}, counters.instructions)",
                       f"gr[{dest}] = value",
                       nat_dest]
                    + _acct_lines(meta, key, cfg, stall=True)
                    + ["return pc + 1"]
                )

        elif kind is OpKind.STORE:
            if len(instr.ins) < 2:
                return None
            size = STORE_SIZES[op]
            ia, iv = instr.ins[0].index, instr.ins[1].index
            addr = _s(_gr_src(ia))
            body = [f"addr = {addr}"]
            if ia:
                body += [f"if nats[{ia}]:",
                         "    raise NaTConsumptionFault(\"store_addr\")"]
            if op == "st8.spill":
                body.append("bit = (addr >> 3) & 63")
                if iv:
                    body += [f"if nats[{iv}]:",
                             "    cpu.unat |= 1 << bit",
                             "else:",
                             "    cpu.unat &= ~(1 << bit)"]
                else:
                    body.append("cpu.unat &= ~(1 << bit)")
            elif iv:
                body += [f"if nats[{iv}]:",
                         "    raise NaTConsumptionFault(\"store_value\")"]
            body += ["if spec_ranges:",
                     f"    spec_check(addr, {size})"]
            if cpu.tag_watch is not None:
                body += [f"if addr < {cpu.tag_limit}:",
                         f"    tag_watch(addr, {size}, {_s(_gr_src(iv))})"]
            body += [
                "try:",
                f"    mem_store(addr, {size}, {_s(_gr_src(iv))})",
                "except MemoryError_ as exc:",
                "    raise Fault(f\"store fault: {exc}\") from exc",
                f"recent.append((addr, {size}, counters.instructions))",
                "if len(recent) > 4:",
                "    recent.pop(0)",
                f"stall = cache_access(addr, {size})",
            ]
            body += _acct_lines(meta, key, cfg, stall=True)
            body += ["return pc + 1"]

        elif kind is OpKind.BRANCH:
            taken = _acct_lines(meta, key, cfg, taken=True)
            if op in ("br", "br.cond"):
                tidx = resolve(instr.target)
                if tidx is None:
                    return None
                body = taken + [f"return {tidx}"]
            elif op == "br.call":
                tidx = resolve(instr.target)
                if tidx is None or not instr.outs:
                    return None
                ob = instr.outs[0].index
                ret = code_address(idx + 1)
                body = ([f"br[{ob}] = {hex(ret)}"]
                        + taken + [f"return {tidx}"])
            elif op in ("br.call.ind", "br.ret", "br.ind"):
                if not instr.ins or (op == "br.call.ind" and not instr.outs):
                    return None
                ib = instr.ins[0].index
                body = [f"t = (br[{ib}] & {hex(IMPL_MASK)})"
                        f" // {CODE_SLOT_BYTES} - 1"]
                if op == "br.call.ind":
                    ob = instr.outs[0].index
                    ret = code_address(idx + 1)
                    body.append(f"br[{ob}] = {hex(ret)}")
                body += taken
                body += [
                    f"if 0 <= t < {n}:",
                    "    return t",
                    "raise IllegalInstructionFault("
                    "f\"indirect branch to invalid slot {t}\")",
                ]
            else:
                return None

        elif kind is OpKind.CHK:  # chk.s
            if not instr.ins:
                return None
            i0 = instr.ins[0].index
            not_taken = _acct_lines(meta, key, cfg, taken=False)
            if i0 == 0:
                body = not_taken + ["return pc + 1"]
            else:
                tidx = resolve(instr.target)
                if tidx is None:
                    return None
                body = (
                    [f"if nats[{i0}]:"]
                    + _indent(_acct_lines(meta, key, cfg, taken=True)
                              + [f"return {tidx}"])
                    + not_taken
                    + ["return pc + 1"]
                )

        elif kind is OpKind.MOVBR:
            if not instr.ins or not instr.outs:
                return None
            if op == "mov.tobr":
                i0 = instr.ins[0].index
                ob = instr.outs[0].index
                if i0:
                    body = [f"if nats[{i0}]:",
                            "    raise NaTConsumptionFault(\"branch_move\")",
                            f"br[{ob}] = gr[{i0}]"]
                else:
                    body = [f"br[{ob}] = 0"]
            else:  # mov.frombr
                ib = instr.ins[0].index
                dest = instr.outs[0].index
                if dest == 0:
                    return None
                body = [f"gr[{dest}] = br[{ib}] & {_M}",
                        f"nats[{dest}] = False"]
            body += taken_none + ["return pc + 1"]

        elif kind is OpKind.MOVAR:
            if op == "mov.toar":
                if not instr.ins:
                    return None
                i0 = instr.ins[0].index
                if i0:
                    body = [f"if nats[{i0}]:",
                            "    raise NaTConsumptionFault(\"ar_move\")",
                            f"cpu.unat = gr[{i0}]"]
                else:
                    body = ["cpu.unat = 0"]
            else:  # mov.fromar
                if not instr.outs or instr.outs[0].index == 0:
                    return None
                dest = instr.outs[0].index
                body = [f"gr[{dest}] = cpu.unat & {_M}",
                        f"nats[{dest}] = False"]
            body += taken_none + ["return pc + 1"]

        elif kind is OpKind.SYS:
            imm = instr.imm or 0
            if imm == BREAK_SYSCALL and syscall_handler is not None:
                handler = syscall_handler
                body = (["cpu.pc = pc"] + taken_none
                        + ["close()", "handler(cpu)", "return ~(pc + 1)"])
            elif imm >= BREAK_NATIVE_BASE and native_handler is not None:
                handler = native_handler
                nid = imm - BREAK_NATIVE_BASE
                body = (["cpu.pc = pc"] + taken_none
                        + ["close()", f"handler(cpu, {nid})",
                           "return ~(pc + 1)"])
            else:
                if imm == BREAK_SYSCALL:
                    msg = "no syscall handler installed"
                elif imm >= BREAK_NATIVE_BASE:
                    msg = "no native handler installed"
                else:
                    msg = f"break {imm:#x}"
                body = (["cpu.pc = pc"] + taken_none
                        + [f"raise IllegalInstructionFault({msg!r})"])

        else:  # NOP
            body = taken_none + ["return pc + 1"]

        if body is None:
            return None

        qp = instr.qp
        if qp:
            # Predicated-off: no architectural effect, but the slot is
            # still consumed with the same meta-driven accounting.
            if kind is OpKind.BRANCH or kind is OpKind.CHK:
                off = _acct_lines(meta, key, cfg, taken=False)
            else:
                off = _acct_lines(meta, key, cfg)
            body = ([f"if not pr[{qp}]:"]
                    + _indent(off + ["return pc + 1"])
                    + body)

        return [f"# {op}"] + body, fn, handler

    def compile_one(instr: Instruction, idx: int) -> Uop:
        built = build(instr, idx)
        if built is None:
            return _make_fallback(cpu, instr)
        lines, fn, handler = built
        src = _render(lines)
        uop = uop_cache.get(src)
        if uop is None:
            code_obj = _FACTORY_CACHE.get(src)
            if code_obj is None:
                code_obj = _FACTORY_CACHE[src] = compile(
                    src, "<predecode>", "exec")
            ns: dict = {}
            exec(code_obj, ns)
            uop = ns["_f"](*shared, fn, handler, None)
            uop_cache[src] = uop
        return uop

    return [compile_one(instr, idx) for idx, instr in enumerate(code)]


# -- fused basic blocks ----------------------------------------------------
#
# Second predecode tier: straight-line runs are fused into one generated
# function per block leader.  Within a block the issue-group state lives
# in plain locals (``gw``/``pw``/``mm``/``sl``), the group-close is
# inlined, and ``counters.instructions`` is batched into one store at
# block exit (members that need the live value — store-buffer sequence
# numbers — use ``ci + j`` with the member's static offset).  The shared
# ``IssueModel`` state is reloaded at entry and written back at every
# exit (including the fault path), so fused blocks interleave freely
# with per-pc micro-ops, reference steps and the thread scheduler.

_PLAIN_KINDS = frozenset((OpKind.ALU, OpKind.CMP, OpKind.LOAD, OpKind.STORE,
                          OpKind.MOVBR, OpKind.MOVAR, OpKind.NOP))
#: Maximum instructions fused into one block; CPU._run_predecoded keeps
#: a larger budget margin so blocks never overrun max_instructions.
MAX_BLOCK = 24


def _close_local() -> List[str]:
    """Inline replica of ``IssueModel._close_group`` on block locals.

    Resetting the masks only when the group is non-empty matches the
    reference: an empty group always has zero masks (the invariant holds
    because masks are only set right after an append).
    """
    return [
        "if group:",
        "    counters.groups += 1",
        "    counters.issue_cycles += 1.0",
        "    share = 1.0 / len(group)",
        "    for c_ in group:",
        "        c_.issue_cycles += share",
        "    group.clear()",
        "    gw = 0",
        "    pw = 0",
        "    mm = 0",
        "    sl = 0",
    ]


def _writeback(total: int) -> List[str]:
    """Flush block-local issue state back to the shared model."""
    return [
        "im._group_writes = gw",
        "im._group_pr_writes = pw",
        "im._group_mem = mm",
        "im._group_slots = sl",
        f"counters.instructions = ci + {total}",
    ]


def predecode_fused(cpu: CPU) -> List[Optional[Uop]]:
    """Fused-block table: ``fused[pc]`` runs the block led by ``pc``.

    Entries are ``None`` for pcs that do not lead a fusable block; the
    run loop falls back to the per-pc micro-op there, so correctness
    never depends on the leader analysis being complete (an unexpected
    indirect-branch target simply executes unfused).
    """
    program = cpu.program
    code = program.code
    n = len(code)
    im = cpu.issue
    cfg = im.config
    fwd = _make_forwarding(cpu)
    shared = _shared_args(cpu, fwd)
    label_index = program.label_index

    def resolve(label):
        try:
            return label_index(label)
        except Exception:
            return None

    leaders = set(program.labels.values())
    leaders.add(label_index(program.entry))
    for i, instr in enumerate(code):
        kind = OP_KIND[instr.op]
        if kind is OpKind.BRANCH or kind is OpKind.CHK or kind is OpKind.SYS:
            if i + 1 < n:
                leaders.add(i + 1)
            if instr.target is not None:
                t = resolve(instr.target)
                if t is not None:
                    leaders.add(t)

    def build_block(start):
        cells: List[str] = []
        key_local: dict = {}
        fns_list: list = []
        state = {"faultable": False}

        def use_key(key):
            cname = key_local.get(key)
            if cname is not None:
                return cname, []
            idx = len(cells)
            cname = f"c{idx}"
            kname = f"k{idx}"
            cells.append(kname)
            key_local[key] = cname
            return cname, [
                f"{cname} = {kname}",
                f"if {cname} is None:",
                f"    {cname} = pair_costs.get({key!r})",
                f"    if {cname} is None:",
                f"        {cname} = pair_costs[{key!r}] = RoleCost()",
                f"    {kname} = {cname}",
            ]

        def acct_local(instr, taken=None, stall=False):
            meta = _meta(instr)
            reads, writes, prw, is_mem, memkind, is_branch, slots = meta
            cname, res = use_key((instr.role, instr.origin))
            rw = reads | writes
            conds = []
            if rw:
                if taken is not None and is_branch and cfg.cmp_branch_same_group:
                    conds.append(f"gw & {hex(rw)} & ~pw")
                else:
                    conds.append(f"gw & {hex(rw)}")
            conds.append(f"sl + {slots} > {cfg.width}")
            if is_mem:
                conds.append(f"mm >= {cfg.mem_ports}")
            out = ["if " + " or ".join(conds) + ":"] + _indent(_close_local())
            out += res
            out += [f"group.append({cname})", f"sl += {slots}"]
            if writes:
                out.append(f"gw |= {hex(writes)}")
            if prw:
                out.append(f"pw |= {hex(prw)}")
            if is_mem:
                out.append("mm += 1")
            out.append(f"{cname}.slots += 1")
            if memkind == 1:
                out.append("counters.loads += 1")
            elif memkind == 2:
                out.append("counters.stores += 1")
            if stall:
                out += ["if stall:",
                        "    counters.stall_cycles += stall",
                        f"    {cname}.stall_cycles += stall"]
            if taken:
                out += ["counters.branches_taken += 1",
                        f"counters.branch_penalty_cycles += "
                        f"{cfg.branch_penalty!r}"]
                out += _close_local()
            return out

        def plain_fragment(instr, j):
            op = instr.op
            kind = OP_KIND[op]
            qp = instr.qp
            sem = None
            stall = False
            if kind is OpKind.ALU:
                if not instr.outs:
                    return None
                dest = instr.outs[0].index
                if op == "movl":
                    imm = (instr.imm or 0) & MASK64
                    sem = [f"gr[{dest}] = {hex(imm)}",
                           f"nats[{dest}] = False"]
                elif op == "settag":
                    sem = [f"nats[{dest}] = True"]
                elif op == "cleartag":
                    sem = [f"nats[{dest}] = False"]
                elif dest != 0:
                    ins_idx = tuple(r.index for r in instr.ins)
                    imm = (instr.imm & MASK64
                           if instr.imm is not None else None)
                    sem = _alu_sem(op, dest, ins_idx, imm,
                                   fn_name=f"fns[{j}]")
                if sem is None:
                    return None
            elif kind is OpKind.CMP:
                if len(instr.outs) != 2 or not instr.ins:
                    return None
                pt, pf = instr.outs[0].index, instr.outs[1].index
                if op == "tnat":
                    sem = _tnat_sem(instr.ins[0].index, pt, pf)
                else:
                    ins_idx = tuple(r.index for r in instr.ins)
                    imm = (instr.imm & MASK64
                           if instr.imm is not None else None)
                    sem = _cmp_sem(op, pt, pf, ins_idx, imm)
                if sem is None:
                    return None
            elif kind is OpKind.LOAD:
                if not instr.ins or not instr.outs:
                    return None
                size = LOAD_SIZES[op]
                ia = instr.ins[0].index
                dest = instr.outs[0].index
                if dest == 0:
                    return None
                addr = _s(_gr_src(ia))
                if op == "ld8.s":
                    defer = (f"nats[{ia}] or not is_implemented(addr)"
                             if ia else "not is_implemented(addr)")
                    sem = [f"ipc = pc + {j}",
                           f"addr = {addr}",
                           f"if {defer}:",
                           f"    gr[{dest}] = 0",
                           f"    nats[{dest}] = True",
                           "    stall = 0.0",
                           "else:",
                           "    if spec_ranges:",
                           f"        spec_check(addr, {size})",
                           f"    value = mem_load(addr, {size})",
                           f"    stall = cache_access(addr, {size})",
                           f"    gr[{dest}] = value",
                           f"    nats[{dest}] = False"]
                    state["faultable"] = True
                else:
                    nat_dest = (
                        f"nats[{dest}] = bool((cpu.unat >> ((addr >> 3)"
                        " & 63)) & 1)"
                        if op == "ld8.fill" else f"nats[{dest}] = False")
                    sem = [f"ipc = pc + {j}", f"addr = {addr}"]
                    if ia:
                        sem += [f"if nats[{ia}]:",
                                "    raise NaTConsumptionFault"
                                "(\"load_addr\")"]
                    sem += ["if spec_ranges:",
                            f"    spec_check(addr, {size})",
                            "try:",
                            f"    value = mem_load(addr, {size})",
                            "except MemoryError_ as exc:",
                            "    raise Fault(f\"load fault: {exc}\")"
                            " from exc",
                            f"stall = cache_access(addr, {size})"
                            f" + fwd(addr, {size}, ci + {j})",
                            f"gr[{dest}] = value",
                            nat_dest]
                    state["faultable"] = True
                stall = True
            elif kind is OpKind.STORE:
                if len(instr.ins) < 2:
                    return None
                size = STORE_SIZES[op]
                ia, iv = instr.ins[0].index, instr.ins[1].index
                sem = [f"ipc = pc + {j}",
                       f"addr = {_s(_gr_src(ia))}"]
                if ia:
                    sem += [f"if nats[{ia}]:",
                            "    raise NaTConsumptionFault"
                            "(\"store_addr\")"]
                if op == "st8.spill":
                    sem.append("bit = (addr >> 3) & 63")
                    if iv:
                        sem += [f"if nats[{iv}]:",
                                "    cpu.unat |= 1 << bit",
                                "else:",
                                "    cpu.unat &= ~(1 << bit)"]
                    else:
                        sem.append("cpu.unat &= ~(1 << bit)")
                elif iv:
                    sem += [f"if nats[{iv}]:",
                            "    raise NaTConsumptionFault"
                            "(\"store_value\")"]
                sem += ["if spec_ranges:",
                        f"    spec_check(addr, {size})"]
                if cpu.tag_watch is not None:
                    sem += [f"if addr < {cpu.tag_limit}:",
                            f"    tag_watch(addr, {size}, "
                            f"{_s(_gr_src(iv))})"]
                sem += ["try:",
                        f"    mem_store(addr, {size}, {_s(_gr_src(iv))})",
                        "except MemoryError_ as exc:",
                        "    raise Fault(f\"store fault: {exc}\") from exc",
                        f"recent.append((addr, {size}, ci + {j}))",
                        "if len(recent) > 4:",
                        "    recent.pop(0)",
                        f"stall = cache_access(addr, {size})"]
                state["faultable"] = True
                stall = True
            elif kind is OpKind.MOVBR:
                if not instr.ins or not instr.outs:
                    return None
                if op == "mov.tobr":
                    i0 = instr.ins[0].index
                    ob = instr.outs[0].index
                    if i0:
                        sem = [f"ipc = pc + {j}",
                               f"if nats[{i0}]:",
                               "    raise NaTConsumptionFault"
                               "(\"branch_move\")",
                               f"br[{ob}] = gr[{i0}]"]
                        state["faultable"] = True
                    else:
                        sem = [f"br[{ob}] = 0"]
                else:
                    dest = instr.outs[0].index
                    if dest == 0:
                        return None
                    sem = [f"gr[{dest}] = br[{instr.ins[0].index}] & {_M}",
                           f"nats[{dest}] = False"]
            elif kind is OpKind.MOVAR:
                if op == "mov.toar":
                    if not instr.ins:
                        return None
                    i0 = instr.ins[0].index
                    if i0:
                        sem = [f"ipc = pc + {j}",
                               f"if nats[{i0}]:",
                               "    raise NaTConsumptionFault(\"ar_move\")",
                               f"cpu.unat = gr[{i0}]"]
                        state["faultable"] = True
                    else:
                        sem = ["cpu.unat = 0"]
                else:
                    if not instr.outs or instr.outs[0].index == 0:
                        return None
                    dest = instr.outs[0].index
                    sem = [f"gr[{dest}] = cpu.unat & {_M}",
                           f"nats[{dest}] = False"]
            else:  # NOP
                sem = []
            if qp:
                if kind is OpKind.LOAD or kind is OpKind.STORE:
                    out = ([f"if pr[{qp}]:"] + _indent(sem)
                           + ["else:", "    stall = 0.0"])
                elif sem:
                    out = [f"if pr[{qp}]:"] + _indent(sem)
                else:
                    out = []
            else:
                out = sem
            return out + acct_local(instr, stall=stall)

        def term_fragment(instr, i, j):
            op = instr.op
            qp = instr.qp
            key = (instr.role, instr.origin)
            after = f"return pc + {j + 1}"
            if op in ("br", "br.cond"):
                tidx = resolve(instr.target)
                if tidx is None:
                    return None
                _, pre = use_key(key)
                taken = (acct_local(instr, taken=True)
                         + _writeback(j + 1) + [f"return {tidx}"])
                if qp:
                    return (pre + [f"if pr[{qp}]:"] + _indent(taken)
                            + acct_local(instr, taken=False)
                            + _writeback(j + 1) + [after])
                return pre + taken
            if op == "br.call":
                tidx = resolve(instr.target)
                if tidx is None or not instr.outs:
                    return None
                ob = instr.outs[0].index
                ret = code_address(i + 1)
                _, pre = use_key(key)
                taken = ([f"br[{ob}] = {hex(ret)}"]
                         + acct_local(instr, taken=True)
                         + _writeback(j + 1) + [f"return {tidx}"])
                if qp:
                    return (pre + [f"if pr[{qp}]:"] + _indent(taken)
                            + acct_local(instr, taken=False)
                            + _writeback(j + 1) + [after])
                return pre + taken
            if op == "chk.s":
                if not instr.ins:
                    return None
                i0 = instr.ins[0].index
                _, pre = use_key(key)
                nottaken = (acct_local(instr, taken=False)
                            + _writeback(j + 1) + [after])
                if i0 == 0:
                    return pre + nottaken
                tidx = resolve(instr.target)
                if tidx is None:
                    return None
                cond = f"pr[{qp}] and nats[{i0}]" if qp else f"nats[{i0}]"
                taken = (acct_local(instr, taken=True)
                         + _writeback(j + 1) + [f"return {tidx}"])
                return pre + [f"if {cond}:"] + _indent(taken) + nottaken
            return None  # indirect branches run via the per-pc micro-op

        body: List[str] = []
        i = start
        j = 0
        term = None
        while i < n and j < MAX_BLOCK:
            instr = code[i]
            kind = OP_KIND[instr.op]
            if kind in _PLAIN_KINDS:
                frag = plain_fragment(instr, j)
                if frag is None:
                    break
                body += frag
                fns_list.append(_ALU_FUNCS.get(instr.op)
                                if kind is OpKind.ALU else None)
                i += 1
                j += 1
                continue
            if kind is OpKind.BRANCH or kind is OpKind.CHK:
                term = term_fragment(instr, i, j)
            break
        total = j + (1 if term is not None else 0)
        # The continuation pc (and the pc after an unfusable member) may
        # lead a fusable run that the global leader scan cannot see.
        conts = [i, i + 1] if term is None else ()
        if total < 2:
            return None, (), conts
        if term is not None:
            body += term
        else:
            body += _writeback(j) + [f"return pc + {j}"]
        if state["faultable"]:
            body = (["try:"] + _indent(body)
                    + ["except Fault:",
                       "    im._group_writes = gw",
                       "    im._group_pr_writes = pw",
                       "    im._group_mem = mm",
                       "    im._group_slots = sl",
                       "    counters.instructions = ci + (ipc - pc)",
                       "    cpu._fault_pc = ipc",
                       "    raise"])
        body = (["gw = im._group_writes",
                 "pw = im._group_pr_writes",
                 "mm = im._group_mem",
                 "sl = im._group_slots",
                 "ci = counters.instructions"] + body)
        return _render(body, tuple(cells)), tuple(fns_list), conts

    def instantiate(src: str, fns_list: tuple) -> Uop:
        code_obj = _FACTORY_CACHE.get(src)
        if code_obj is None:
            code_obj = _FACTORY_CACHE[src] = compile(
                src, "<predecode-block>", "exec")
        ns: dict = {}
        exec(code_obj, ns)
        return ns["_f"](*shared, None, None, fns_list)

    # Blocks are built lazily, on first execution: each leader starts as
    # a trampoline that builds (and installs) its block, then runs it.
    # Short-lived machines (most tests) thus only pay codegen for the
    # blocks they actually execute.  Generated sources are cached on the
    # program object so further machines running the same program skip
    # source construction and only re-instantiate the closures.
    src_cache = getattr(program, "_fused_src_cache", None)
    if src_cache is None:
        src_cache = program._fused_src_cache = {}
    fused: List[Optional[Uop]] = [None] * n
    seen = set(leaders)

    def _lazy(start: int) -> Uop:
        def trampoline(pc: int) -> int:
            entry = src_cache.get(start)
            if entry is None:
                entry = src_cache[start] = build_block(start)
            src, fns_list, conts = entry
            blk = instantiate(src, fns_list) if src is not None else None
            fused[start] = blk
            for c in conts:
                if 0 <= c < n and c not in seen:
                    seen.add(c)
                    fused[c] = _lazy(c)
            if blk is not None:
                return blk(pc)
            # Not fusable from here: run this pc's micro-op once so the
            # trampoline still makes progress (later visits go straight
            # to the per-pc path because fused[start] is now None).
            cpu._fault_pc = pc
            return cpu._uops[pc](pc)
        return trampoline

    for start in leaders:
        if 0 <= start < n:
            fused[start] = _lazy(start)
    return fused
