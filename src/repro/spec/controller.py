"""Epoch bookkeeping and commit/rollback for repro.spec.

One :class:`SpeculationController` per machine owns the speculation
life cycle:

* **Entry** happens at the *top* of a native (pre-dispatch, pc in the
  shared stub), only when the machine is quiescent enough to resume
  the fast copy and the live taint digests into few enough ranges
  (:class:`~repro.spec.watch.TaintWatch`).  Entry captures a
  :class:`~repro.resil.checkpoint.DeltaCheckpoint` — stacked on the
  resilience chain tip when one is current, on the controller's own
  base snapshot otherwise — then drops the core to the fast copy.
* **Commit** happens at the next ``accept``/``thread_create`` top, at
  guest exit, or early when taint drains or moves *within* the watch.
  Deferred externally visible effects (network sends, console writes)
  are released in order, and the entry delta is folded away so the
  epoch leaves no trace in checkpoint lineage.
* **Rollback** restores the entry delta in place, truncates alerts
  recorded during the epoch, drops deferred effects, re-charges the
  wasted cycles as I/O time (the attempt was real work), and forces
  track mode so the same slice replays fully instrumented — alerts,
  pcs and origins then match an always-on run bit for bit.

The epoch never spans a resilience request-boundary checkpoint:
``before_native("accept")`` commits before the supervisor captures,
so recovery state is always speculation-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.adaptive.controller import MODE_FAST, MODE_TRACK
from repro.cpu.faults import SpecGuardTrip
from repro.isa.operands import GR_SP
from repro.resil.checkpoint import DeltaCheckpoint, MachineCheckpoint
from repro.spec.watch import TaintWatch

#: Refuse entry when the taint bitmap digests into more merged ranges
#: than this — the per-access guard is O(ranges), and a fragmented
#: heap means the request will likely touch taint anyway.
SPEC_MAX_RANGES = 16

#: Refuse entry above this many live tainted granules: scanning the
#: bitmap and guarding huge ranges stops paying for itself.
SPEC_MAX_LIVE_GRANULES = 1 << 16

#: Natives at whose *top* an open epoch must end and a new epoch must
#: not begin.  ``accept`` is the request boundary (the resilience
#: supervisor checkpoints inside it — the epoch must be gone first);
#: ``thread_create`` forks execution state the single-core watch
#: cannot reason about.
COMMIT_NATIVES = frozenset({"accept", "thread_create"})


@dataclass
class SpeculationState:
    """Bookkeeping for one open speculation epoch."""

    epoch_id: int
    watch: TaintWatch
    checkpoint: DeltaCheckpoint
    #: 'resil' (delta on the supervisor chain tip, handed back via
    #: ``readopt_epoch``) or 'own' (delta on the controller's private
    #: base, folded with ``absorb``).
    cp_kind: str
    parent_epoch: int
    entry_pc: int
    entry_instructions: int
    entry_cycles: float
    #: ``len(engine.alerts)`` at entry; growth past this inside the
    #: epoch forces a rollback (alert mode records instead of raising).
    alert_stamp: int
    #: Deferred effects in program order:
    #: ``("send", conn, data, tags)`` / ``("console", fd, data)``.
    deferred: List[tuple] = field(default_factory=list)
    #: Set when taint moved strictly *within* the watch (e.g. ``free``
    #: cleared part of a watched buffer): still sound — host natives
    #: apply data and tag effects together — but the watch is stale,
    #: so commit and re-digest at the next boundary.
    watch_dirty: bool = False


class SpeculationController:
    """Owns speculative epochs: entry policy, guards, commit/rollback."""

    def __init__(self, machine,
                 max_ranges: int = SPEC_MAX_RANGES,
                 max_live_granules: int = SPEC_MAX_LIVE_GRANULES) -> None:
        self.machine = machine
        self.max_ranges = max_ranges
        self.max_live_granules = max_live_granules
        self.enabled = True
        self._epoch: Optional[SpeculationState] = None
        self._next_epoch_id = 1
        #: Private base snapshot for epochs captured outside the
        #: supervisor's chain (plain / non-recover machines).
        self._base: Optional[MachineCheckpoint] = None
        #: After a rollback, do not re-enter until the next request
        #: boundary: the replay would just trip again on the same data.
        self._cooldown_until_accept = False
        #: Entry-attempt memo: when entry was refused at mutation
        #: stamp N, skip rebuilding the watch until the bitmap changes.
        self._deny_stamp: Optional[int] = None
        # stats (read by obs.metrics.collect_machine)
        self.epochs = 0
        self.commits = 0
        self.rollbacks = 0
        self.committed_instructions = 0
        self.wasted_instructions = 0
        self.wasted_cycles = 0.0
        self.deferred_sends = 0
        self.deferred_bytes = 0
        self.entry_failures = 0
        machine.taint_map.mutation_hook = self._on_tag_mutation

    # -- queries -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while an epoch is open."""
        return self._epoch is not None

    @property
    def watch_ranges(self) -> int:
        """Merged guard ranges of the live epoch (0 when idle)."""
        return len(self._epoch.watch.ranges) if self._epoch else 0

    # -- boundary hooks (called by GuestOS) --------------------------------

    def before_native(self, cpu, name: str) -> None:
        """Pre-dispatch hook: commit at boundaries, else try to enter.

        Runs at the top of every native, pc still on the break — a
        checkpoint captured here re-executes the native exactly once
        after a restore (the handler has not run yet).
        """
        if not self.enabled:
            return
        if name in COMMIT_NATIVES:
            if name == "accept":
                self._cooldown_until_accept = False
            if self._epoch is not None:
                if self._alerts_grew():
                    self._rollback(cpu, reason="alert")
                else:
                    self._commit(cpu, reason="request-boundary")
            return
        if self._epoch is None:
            self._try_enter(cpu)

    def on_boundary(self, cpu) -> None:
        """Post-handler hook: judge the epoch after each native."""
        epoch = self._epoch
        if epoch is None:
            return
        if self._alerts_grew():
            self._rollback(cpu, reason="alert")
            return
        if cpu.unat:
            # A NaT spill under fast mode means tainted state escaped
            # the watch's model; replay tracked to find out how.
            self._rollback(cpu, reason="unat")
            return
        if self.machine.taint_map.live_granules == 0:
            # Taint drained inside the epoch (e.g. ``free``): nothing
            # left to guard, and plain fast mode takes over from here.
            self._commit(cpu, reason="taint-drained")
            return
        if epoch.watch_dirty:
            # The watch is stale: commit and drop to tracking.  Do NOT
            # re-enter here — the pc still sits on the native's break,
            # so a checkpoint captured post-handler would re-execute
            # the native after a rollback.  The next native's
            # pre-dispatch hook re-enters with a fresh watch.
            self._commit(cpu, reason="watch-stale")
            adaptive = self.machine.adaptive
            if adaptive.mode == MODE_FAST:
                adaptive._switch(cpu, MODE_TRACK)

    # -- entry -------------------------------------------------------------

    def _try_enter(self, cpu) -> None:
        machine = self.machine
        adaptive = machine.adaptive
        if adaptive is None or not adaptive.enabled:
            return
        if self._cooldown_until_accept or cpu.halted:
            return
        taint_map = machine.taint_map
        live = taint_map.live_granules
        if not 0 < live <= self.max_live_granules:
            return
        if self._deny_stamp is not None \
                and self._deny_stamp == taint_map.mutations:
            return
        threads = getattr(machine, "threads", None)
        if threads is not None and threads.multi_threaded:
            return
        if not adaptive._quiescent(cpu):
            return
        watch = TaintWatch.build(machine, self.max_ranges)
        if watch is None or self._touches_stack(cpu, watch):
            self._deny_stamp = taint_map.mutations
            self.entry_failures += 1
            return
        self._deny_stamp = None
        checkpoint, cp_kind, parent_epoch = self._capture_entry()
        counters = cpu.counters
        self._epoch = SpeculationState(
            epoch_id=self._next_epoch_id,
            watch=watch,
            checkpoint=checkpoint,
            cp_kind=cp_kind,
            parent_epoch=parent_epoch,
            entry_pc=cpu.pc,
            entry_instructions=counters.instructions,
            entry_cycles=counters.cycles,
            alert_stamp=len(machine.engine.alerts),
        )
        self._next_epoch_id += 1
        self.epochs += 1
        cpu.spec_ranges[:] = watch.ranges
        if adaptive.mode == MODE_TRACK:
            adaptive._switch(cpu, MODE_FAST)
        self._emit(cpu, "enter", self._epoch, reason=cp_kind)

    def _touches_stack(self, cpu, watch: TaintWatch) -> bool:
        """Working-set estimate: refuse when taint sits in the live
        stack window — the request is certain to trip immediately."""
        from repro.runtime.threads import thread_stack_top

        threads = getattr(self.machine, "threads", None)
        tid = threads.current_tid if threads is not None else 0
        return watch.intersects(cpu.gr[GR_SP] & ~7, thread_stack_top(tid))

    def _capture_entry(self) -> Tuple[DeltaCheckpoint, str, int]:
        machine = self.machine
        mem = machine.memory
        resil = getattr(machine, "resil", None)
        if resil is not None and resil.chain \
                and mem.dirty_epoch == resil.chain[-1].epoch:
            tip = resil.chain[-1]
            return DeltaCheckpoint.capture(machine, tip), "resil", tip.epoch
        if self._base is None or mem.dirty_epoch != self._base.epoch:
            self._base = MachineCheckpoint.capture(machine)
        return (DeltaCheckpoint.capture(machine, self._base), "own",
                self._base.epoch)

    # -- guard channels ----------------------------------------------------

    def _on_tag_mutation(self, tag_byte_addr: int, length: int) -> None:
        """TaintMap mutation hook: judge host-side taint movement.

        Tag-byte offsets map to data at 8 data bytes per tag byte for
        both granularities.  Movement fully inside the watch marks it
        stale (commit at the next boundary); any movement outside is
        taint escaping the guarded set — trip immediately.
        """
        epoch = self._epoch
        if epoch is None:
            return
        lo = tag_byte_addr << 3
        hi = (tag_byte_addr + length) << 3
        if epoch.watch.contains_linear(lo, hi):
            epoch.watch_dirty = True
            return
        raise SpecGuardTrip(lo, hi - lo, reason="taint-motion")

    def handle_trip(self, exc: Optional[BaseException] = None) -> bool:
        """Roll back the open epoch after a trip/fault/alert raise.

        Called from the run loop (and the resilience supervisor's
        recovery path) when an exception escapes guest execution while
        an epoch is open.  Returns False when no epoch was open — the
        caller must then re-raise.
        """
        if self._epoch is None:
            return False
        reason = "guard"
        if isinstance(exc, SpecGuardTrip):
            reason = exc.reason
        elif exc is not None:
            reason = type(exc).__name__
        self._rollback(self.machine.cpu, reason=reason)
        return True

    def finalize(self) -> bool:
        """Close an epoch left open at run exit.

        Commits (releasing deferred effects) unless alerts were
        recorded during the epoch, in which case it rolls back and
        returns False — the caller resumes execution to replay the
        slice under tracking.
        """
        if self._epoch is None:
            return True
        cpu = self.machine.cpu
        if self._alerts_grew():
            self._rollback(cpu, reason="alert-at-exit")
            return False
        self._commit(cpu, reason="exit")
        return True

    # -- deferred externally visible effects -------------------------------

    def defer_send(self, conn, data: bytes, tags) -> None:
        """Buffer a network send until commit (dropped on rollback)."""
        self._epoch.deferred.append(("send", conn, data, tags))
        self.deferred_sends += 1
        self.deferred_bytes += len(data)

    def defer_console(self, fd: int, data: bytes) -> None:
        """Buffer a console write until commit (dropped on rollback)."""
        self._epoch.deferred.append(("console", fd, data))

    def _release_deferred(self, epoch: SpeculationState) -> None:
        console = self.machine.console
        for item in epoch.deferred:
            if item[0] == "send":
                _, conn, data, tags = item
                if tags is not None:
                    conn.record_outbound_tags(tags)
                conn.send(data)
            else:
                _, fd, data = item
                console.write(fd, data)

    # -- commit / rollback -------------------------------------------------

    def _alerts_grew(self) -> bool:
        return len(self.machine.engine.alerts) > self._epoch.alert_stamp

    def _commit(self, cpu, reason: str) -> None:
        epoch = self._epoch
        self._epoch = None
        machine = self.machine
        self._release_deferred(epoch)
        del cpu.spec_ranges[:]
        if epoch.cp_kind == "resil":
            # Hand the dirty-page lineage back to the supervisor's
            # chain tip as if the epoch never existed.
            machine.memory.readopt_epoch(epoch.parent_epoch,
                                         epoch.checkpoint.pages.keys())
        else:
            self._base.absorb(epoch.checkpoint)
        self.commits += 1
        self.committed_instructions += \
            cpu.counters.instructions - epoch.entry_instructions
        self._emit(cpu, "commit", epoch, reason=reason)

    def _rollback(self, cpu, reason: str) -> None:
        epoch = self._epoch
        self._epoch = None
        machine = self.machine
        counters = cpu.counters
        trip_pc = cpu.pc
        wasted_instr = counters.instructions - epoch.entry_instructions
        wasted_cycles = counters.cycles - epoch.entry_cycles
        # Alerts recorded during the epoch are phantoms of the
        # speculative attempt; the tracked replay re-records them with
        # full provenance.  (Checkpoint restore never touches alerts.)
        del machine.engine.alerts[epoch.alert_stamp:]
        del cpu.spec_ranges[:]
        epoch.checkpoint.restore(machine)
        if epoch.cp_kind == "resil":
            machine.memory.readopt_epoch(epoch.parent_epoch,
                                         epoch.checkpoint.pages.keys())
        else:
            self._base.absorb(epoch.checkpoint)
        # The restore rewound the counters; the speculative attempt
        # still burned real time, so re-charge it as I/O cycles — the
        # benchmark pays for misspeculation honestly.
        if wasted_cycles > 0:
            counters.add_io_cycles(wasted_cycles)
        adaptive = machine.adaptive
        if adaptive is not None and adaptive.mode == MODE_FAST:
            # Entry from a committed predecessor restores fast mode;
            # the replay must run tracked or it would trip again.
            adaptive._switch(cpu, MODE_TRACK)
        self._cooldown_until_accept = True
        self.rollbacks += 1
        self.wasted_instructions += wasted_instr
        self.wasted_cycles += wasted_cycles
        self._emit(cpu, "rollback", epoch, reason=reason,
                   trigger_pc=trip_pc,
                   instruction_count=epoch.entry_instructions + wasted_instr)

    # -- observability -----------------------------------------------------

    def _emit(self, cpu, action: str, epoch: SpeculationState,
              reason: str = "", trigger_pc: Optional[int] = None,
              instruction_count: Optional[int] = None) -> None:
        obs = self.machine.obs
        if obs is None:
            return
        from repro.obs.events import SpecEvent

        obs.tracer.emit(SpecEvent(
            action=action,
            epoch=epoch.epoch_id,
            trigger_pc=epoch.entry_pc if trigger_pc is None else trigger_pc,
            guarded_bytes=epoch.watch.guarded_bytes,
            ranges=len(epoch.watch.ranges),
            reason=reason,
            instruction_count=(cpu.counters.instructions
                               if instruction_count is None
                               else instruction_count),
        ))
