"""Speculative fast-path execution with taint-range guards (repro.spec).

The paper's central bet is that taint tracking is *usually* idle: most
requests never touch tainted data, so the expensive instrumented copy
of the program runs for nothing.  ``repro.adaptive`` already exploits
the all-clean case (drop to the fast copy when zero granules are
live); this package extends the bet to the *contained-taint* case —
taint exists, but in a handful of address ranges the current request
will not touch.

The machine **speculates** that the request stays outside those
ranges: it runs the uninstrumented fast copy under a cheap per-access
guard (:class:`TaintWatch`), buffers externally visible effects, and
commits at the next request boundary.  If the guard trips — any load
or store intersects a watched range, or a taint source fires — the
epoch's :class:`~repro.resil.checkpoint.DeltaCheckpoint` is rolled
back in place and the same slice replays under full tracking, so
alerts, pcs and provenance are bit-identical to an always-on run.

See DESIGN.md section 15 for the entry policy and the commit/rollback
invariants.
"""

from repro.spec.controller import (
    COMMIT_NATIVES,
    SPEC_MAX_LIVE_GRANULES,
    SPEC_MAX_RANGES,
    SpeculationController,
    SpeculationState,
)
from repro.spec.watch import TaintWatch

__all__ = [
    "COMMIT_NATIVES",
    "SPEC_MAX_LIVE_GRANULES",
    "SPEC_MAX_RANGES",
    "SpeculationController",
    "SpeculationState",
    "TaintWatch",
]
