"""Taint-range summaries for speculative guarding (repro.spec).

A :class:`TaintWatch` is a point-in-time digest of the taint bitmap:
the set of *data* virtual-address ranges whose granules carry taint,
coarsened to tag-byte resolution and merged.  The speculative fast
path installs the ranges on the core (``cpu.spec_ranges``) so every
load/store pays one O(ranges) containment check — ranges is small by
construction (entry is refused above ``max_ranges``), so the guard is
a handful of integer compares per access on the host, and free in
simulated cycles (a real design point: the paper's ALAT-style range
registers check in parallel with the TLB).

Only data ranges are watched.  The fast copy carries no
instrumentation, so it never addresses tag space; host-side taint
mutations (memcpy summaries, ``recv`` imports, sources, ``free``)
funnel through :attr:`repro.taint.bitmap.TaintMap.mutation_hook` and
are judged against the same ranges by the controller.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.mem.address import (
    IMPL_BITS,
    IMPL_MASK,
    make_address,
    region_of,
    tag_space_limit,
)
from repro.mem.memory import PAGE_BITS

#: Matches maximal runs of nonzero bytes in one tag page.
_NONZERO_RUNS = re.compile(rb"[^\x00]+")

#: Bits of data covered by one tag byte: 8 data bytes at byte
#: granularity (one tag bit per byte), 8 data bytes at word
#: granularity (one tag byte per 8-byte word).  Identical by a happy
#: accident of the encoding, which keeps the scan granularity-blind.
_DATA_BYTES_PER_TAG_BYTE_SHIFT = 3


@dataclass
class TaintWatch:
    """Merged tainted-address ranges plus a tainted-register summary."""

    #: Half-open ``(lo, hi)`` *virtual* data ranges, sorted, for the
    #: core's per-access guard.
    ranges: List[Tuple[int, int]] = field(default_factory=list)
    #: The same ranges in *linearized* form (region folded into the
    #: high bits), for judging tag-space mutation offsets.
    linear_ranges: List[Tuple[int, int]] = field(default_factory=list)
    #: Total data bytes covered by the ranges.
    guarded_bytes: int = 0
    #: Registers carrying taint (NaT) at build time.  Entry requires
    #: quiescent registers, so this is empty for every live epoch; it
    #: exists so the summary is complete as a data structure.
    tainted_regs: Tuple[int, ...] = ()

    @classmethod
    def build(cls, machine, max_ranges: int) -> Optional["TaintWatch"]:
        """Scan the tag bitmap into a watch; None when too fragmented.

        Walks only region-0 tag pages (the same filter as the metrics
        bitmap-population scan), finds nonzero byte runs per page, and
        widens each run to the data bytes its tag bytes cover — a
        sound superset: a partially tainted tag byte guards all 8 of
        its data bytes, trading rare over-trips for a scan that never
        inspects individual bits.
        """
        taint_map = machine.taint_map
        if taint_map.flat:
            # Flat tag translation aliases all regions onto one tag
            # arena (an ablation mode); tag offsets cannot be mapped
            # back to unique data addresses, so never speculate.
            return None
        limit = tag_space_limit(taint_map.granularity)
        spans: List[Tuple[int, int]] = []
        for page_no, page in machine.memory.iter_pages():
            base = page_no << PAGE_BITS
            if region_of(base) != 0 or base >= limit:
                continue
            for match in _NONZERO_RUNS.finditer(bytes(page)):
                tag_lo = base + match.start()
                tag_hi = base + match.end()
                spans.append((tag_lo << _DATA_BYTES_PER_TAG_BYTE_SHIFT,
                              tag_hi << _DATA_BYTES_PER_TAG_BYTE_SHIFT))
            if len(spans) > 4 * max_ranges:
                # Merging can only shrink the list 4x here (spans from
                # one page are already maximal runs); bail early.
                return None
        spans.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in spans:
            if merged and lo <= merged[-1][1]:
                if hi > merged[-1][1]:
                    merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        if len(merged) > max_ranges:
            return None
        watch = cls()
        watch.linear_ranges = merged
        watch.guarded_bytes = sum(hi - lo for lo, hi in merged)
        for lo, hi in merged:
            watch.ranges.extend(_delinearize(lo, hi))
        watch.ranges.sort()
        return watch

    # -- queries -----------------------------------------------------------

    def contains_linear(self, lo: int, hi: int) -> bool:
        """True when linearized [lo, hi) lies fully inside one range."""
        for rlo, rhi in self.linear_ranges:
            if rlo <= lo and hi <= rhi:
                return True
            if rlo > lo:
                break
        return False

    def intersects_linear(self, lo: int, hi: int) -> bool:
        """True when linearized [lo, hi) overlaps any range."""
        for rlo, rhi in self.linear_ranges:
            if rlo < hi and lo < rhi:
                return True
        return False

    def intersects(self, lo: int, hi: int) -> bool:
        """True when *virtual* [lo, hi) overlaps any watched range."""
        for rlo, rhi in self.ranges:
            if rlo < hi and lo < rhi:
                return True
        return False


def _delinearize(lo: int, hi: int) -> List[Tuple[int, int]]:
    """Split a linear data range into per-region virtual ranges."""
    out: List[Tuple[int, int]] = []
    while lo < hi:
        region = lo >> IMPL_BITS
        region_end = (region + 1) << IMPL_BITS
        piece_hi = min(hi, region_end)
        out.append((make_address(region, lo & IMPL_MASK),
                    make_address(region, (piece_hi - 1) & IMPL_MASK) + 1))
        lo = piece_hi
    return out
