"""A small assembler for the IA-64-like ISA.

The textual syntax follows Itanium assembly conventions::

    func main:
        adds r12 = -16, r12
        movl r14 = 0x2000
    loop:
        ld8 r15 = [r14]
        cmp.eq p6, p7 = r15, r0
        (p7) br.cond loop
        mov b6 = r15
        br.ret b0
    endfunc

Directives: ``func NAME:`` / ``endfunc`` delimit functions,
``data NAME, SIZE [, "init"]`` declares data, ``native NAME`` declares a
runtime native.  Comments start with ``//`` or ``;``.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from repro.isa.instruction import Instruction, OPCODES, OpKind
from repro.isa.operands import Reg, RegClass, parse_reg
from repro.isa.program import DataItem, Program, ProgramBuilder


class AssemblerError(ValueError):
    """Raised for malformed assembly input."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_QP_RE = re.compile(r"^\(p(\d+)\)\s*")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_FUNC_RE = re.compile(r"^func\s+([A-Za-z_][\w.$]*):$")
_DATA_RE = re.compile(r'^data\s+([A-Za-z_][\w.$]*)\s*,\s*(\d+)(?:\s*,\s*"(.*)")?$')
_NATIVE_RE = re.compile(r"^native\s+([A-Za-z_][\w.$]*)$")


def assemble(text: str, entry: str = "main") -> Program:
    """Assemble a full program text into a :class:`Program`."""
    builder = ProgramBuilder()
    in_function = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        m = _FUNC_RE.match(line)
        if m:
            if in_function:
                raise AssemblerError("nested func", line_no, raw)
            builder.begin_function(m.group(1))
            in_function = True
            continue
        if line == "endfunc":
            if not in_function:
                raise AssemblerError("endfunc outside func", line_no, raw)
            builder.end_function()
            in_function = False
            continue
        m = _DATA_RE.match(line)
        if m:
            name, size, init = m.group(1), int(m.group(2)), m.group(3)
            init_bytes = init.encode("latin-1").decode("unicode_escape").encode("latin-1") if init else b""
            builder.add_data(DataItem(name=name, size=size, init=init_bytes))
            continue
        m = _NATIVE_RE.match(line)
        if m:
            builder.declare_native(m.group(1))
            continue
        m = _LABEL_RE.match(line)
        if m:
            builder.label(m.group(1))
            continue
        try:
            builder.emit(parse_instruction(line))
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no, raw) from exc
    return builder.build(entry=entry)


def parse_instruction(line: str) -> Instruction:
    """Parse one instruction line (no label, no comment)."""
    line = line.strip()
    qp = 0
    m = _QP_RE.match(line)
    if m:
        qp = int(m.group(1))
        line = line[m.end():]
    parts = line.split(None, 1)
    mnemonic = parts[0]
    rest = parts[1].strip() if len(parts) > 1 else ""
    handler = _SPECIAL.get(mnemonic)
    if handler is not None:
        return handler(mnemonic, rest, qp)
    if mnemonic == "mov":
        return _parse_mov(rest, qp)
    if mnemonic not in OPCODES:
        raise ValueError(f"unknown opcode {mnemonic!r}")
    kind = OPCODES[mnemonic][0]
    if kind is OpKind.ALU:
        return _parse_alu(mnemonic, rest, qp)
    if kind is OpKind.CMP:
        return _parse_cmp(mnemonic, rest, qp)
    if kind is OpKind.LOAD:
        return _parse_load(mnemonic, rest, qp)
    if kind is OpKind.STORE:
        return _parse_store(mnemonic, rest, qp)
    if kind is OpKind.BRANCH:
        return _parse_branch(mnemonic, rest, qp)
    raise ValueError(f"cannot parse {mnemonic!r}")


def _strip_comment(line: str) -> str:
    for marker in ("//", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _split_eq(rest: str) -> Tuple[str, str]:
    if "=" not in rest:
        raise ValueError("expected '=' in operands")
    lhs, rhs = rest.split("=", 1)
    return lhs.strip(), rhs.strip()


def _parse_int(text: str) -> int:
    return int(text.strip(), 0)


def _parse_operand(text: str) -> object:
    text = text.strip()
    try:
        return parse_reg(text)
    except ValueError:
        return _parse_int(text)


def _parse_alu(mnemonic: str, rest: str, qp: int) -> Instruction:
    if mnemonic in ("settag", "cleartag"):
        return Instruction(mnemonic, qp=qp, outs=(parse_reg(rest),), ins=(parse_reg(rest),))
    lhs, rhs = _split_eq(rest)
    dest = parse_reg(lhs)
    srcs = [_parse_operand(p) for p in rhs.split(",")]
    regs = tuple(s for s in srcs if isinstance(s, Reg))
    imms = [s for s in srcs if isinstance(s, int)]
    if len(imms) > 1:
        raise ValueError("at most one immediate operand")
    return Instruction(
        mnemonic, qp=qp, outs=(dest,), ins=regs, imm=imms[0] if imms else None
    )


def _parse_cmp(mnemonic: str, rest: str, qp: int) -> Instruction:
    lhs, rhs = _split_eq(rest)
    preds = tuple(parse_reg(p) for p in lhs.split(","))
    if len(preds) != 2 or not all(p.is_pr for p in preds):
        raise ValueError("compare must write two predicate registers")
    srcs = [_parse_operand(p) for p in rhs.split(",")]
    regs = tuple(s for s in srcs if isinstance(s, Reg))
    imms = [s for s in srcs if isinstance(s, int)]
    return Instruction(
        mnemonic, qp=qp, outs=preds, ins=regs, imm=imms[0] if imms else None
    )


def _parse_load(mnemonic: str, rest: str, qp: int) -> Instruction:
    lhs, rhs = _split_eq(rest)
    dest = parse_reg(lhs)
    if not (rhs.startswith("[") and rhs.endswith("]")):
        raise ValueError("load address must be [rN]")
    addr = parse_reg(rhs[1:-1])
    return Instruction(mnemonic, qp=qp, outs=(dest,), ins=(addr,))


def _parse_store(mnemonic: str, rest: str, qp: int) -> Instruction:
    lhs, rhs = _split_eq(rest)
    if not (lhs.startswith("[") and lhs.endswith("]")):
        raise ValueError("store address must be [rN]")
    addr = parse_reg(lhs[1:-1])
    value = parse_reg(rhs)
    return Instruction(mnemonic, qp=qp, ins=(addr, value))


def _parse_branch(mnemonic: str, rest: str, qp: int) -> Instruction:
    if mnemonic == "br.ret":
        return Instruction(mnemonic, qp=qp, ins=(parse_reg(rest),))
    if mnemonic == "br.ind":
        return Instruction(mnemonic, qp=qp, ins=(parse_reg(rest),))
    if mnemonic in ("br", "br.cond"):
        return Instruction(mnemonic, qp=qp, target=rest.strip())
    if mnemonic in ("br.call", "br.call.ind"):
        lhs, rhs = _split_eq(rest)
        link = parse_reg(lhs)
        try:
            target_reg: Optional[Reg] = parse_reg(rhs)
        except ValueError:
            target_reg = None
        if target_reg is not None and target_reg.is_br:
            return Instruction("br.call.ind", qp=qp, outs=(link,), ins=(target_reg,))
        return Instruction("br.call", qp=qp, outs=(link,), target=rhs.strip())
    raise ValueError(f"cannot parse branch {mnemonic}")


def _parse_chk(mnemonic: str, rest: str, qp: int) -> Instruction:
    parts = [p.strip() for p in rest.split(",")]
    if len(parts) != 2:
        raise ValueError("chk.s needs register and recovery label")
    return Instruction("chk.s", qp=qp, ins=(parse_reg(parts[0]),), target=parts[1])


def _parse_break(mnemonic: str, rest: str, qp: int) -> Instruction:
    return Instruction("break", qp=qp, imm=_parse_int(rest) if rest else 0)


def _parse_nop(mnemonic: str, rest: str, qp: int) -> Instruction:
    return Instruction("nop", qp=qp)


def _parse_mov(rest: str, qp: int) -> Instruction:
    """``mov`` disambiguates into GR/BR/AR move variants by operands."""
    lhs, rhs = _split_eq(rest)
    dest = parse_reg(lhs)
    try:
        src: object = parse_reg(rhs)
    except ValueError:
        src = _parse_int(rhs)
    if isinstance(src, int):
        return Instruction("movl", qp=qp, outs=(dest,), imm=src)
    if dest.is_br:
        return Instruction("mov.tobr", qp=qp, outs=(dest,), ins=(src,))
    if src.is_br:
        return Instruction("mov.frombr", qp=qp, outs=(dest,), ins=(src,))
    if dest.cls is RegClass.AR:
        return Instruction("mov.toar", qp=qp, outs=(dest,), ins=(src,))
    if src.cls is RegClass.AR:
        return Instruction("mov.fromar", qp=qp, outs=(dest,), ins=(src,))
    return Instruction("mov", qp=qp, outs=(dest,), ins=(src,))


_SPECIAL = {
    "chk.s": _parse_chk,
    "break": _parse_break,
    "nop": _parse_nop,
}
