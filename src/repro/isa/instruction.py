"""Instruction model for the IA-64-like ISA.

Instructions are plain data; execution semantics live in
:mod:`repro.cpu.core` and timing in :mod:`repro.cpu.perf`.  The opcode
set is the subset of Itanium that SHIFT's code generator and
instrumentation pass need, plus the paper's three proposed
architectural-enhancement instructions (``settag``, ``cleartag`` and the
NaT-aware compares ``tcmp.*``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.isa.operands import Reg


class OpKind(enum.Enum):
    """Broad opcode families used by the executor and the timing model."""

    ALU = "alu"  # register/immediate arithmetic and logic
    CMP = "cmp"  # compare writing two predicates
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CHK = "chk"  # speculation check
    MOVBR = "movbr"  # moves to/from branch registers
    MOVAR = "movar"  # moves to/from application registers
    SYS = "sys"  # break (syscall / native / trap)
    NOP = "nop"


# Mnemonic -> (kind, base latency in cycles).
# Latencies are issue-to-use latencies for the in-order timing model;
# loads add cache-hierarchy stalls on top.
OPCODES = {
    # ALU
    "add": (OpKind.ALU, 1),
    "sub": (OpKind.ALU, 1),
    "and": (OpKind.ALU, 1),
    "andcm": (OpKind.ALU, 1),  # a & ~b
    "or": (OpKind.ALU, 1),
    "xor": (OpKind.ALU, 1),
    "shl": (OpKind.ALU, 1),
    "shr": (OpKind.ALU, 1),  # arithmetic shift right
    "shr.u": (OpKind.ALU, 1),  # logical shift right
    "mul": (OpKind.ALU, 3),  # pseudo (xma on real Itanium)
    "div": (OpKind.ALU, 20),  # pseudo (FP sequence on real Itanium)
    "mod": (OpKind.ALU, 20),  # pseudo
    "adds": (OpKind.ALU, 1),  # add 14-bit immediate
    "movl": (OpKind.ALU, 1),  # load 64-bit immediate
    "mov": (OpKind.ALU, 1),  # GR <- GR
    "sxt1": (OpKind.ALU, 1),
    "sxt2": (OpKind.ALU, 1),
    "sxt4": (OpKind.ALU, 1),
    "zxt1": (OpKind.ALU, 1),
    "zxt2": (OpKind.ALU, 1),
    "zxt4": (OpKind.ALU, 1),
    # Compares: write (p_true, p_false).  With a NaT source operand the
    # plain forms clear both predicates (Itanium behaviour the paper
    # works around); the tcmp.* forms are the proposed NaT-aware
    # compares that proceed normally.
    "cmp.eq": (OpKind.CMP, 1),
    "cmp.ne": (OpKind.CMP, 1),
    "cmp.lt": (OpKind.CMP, 1),
    "cmp.le": (OpKind.CMP, 1),
    "cmp.gt": (OpKind.CMP, 1),
    "cmp.ge": (OpKind.CMP, 1),
    "cmp.ltu": (OpKind.CMP, 1),
    "cmp.geu": (OpKind.CMP, 1),
    "tcmp.eq": (OpKind.CMP, 1),
    "tcmp.ne": (OpKind.CMP, 1),
    "tcmp.lt": (OpKind.CMP, 1),
    "tcmp.le": (OpKind.CMP, 1),
    "tcmp.gt": (OpKind.CMP, 1),
    "tcmp.ge": (OpKind.CMP, 1),
    "tcmp.ltu": (OpKind.CMP, 1),
    "tcmp.geu": (OpKind.CMP, 1),
    # NaT test: writes (p_nat, p_not_nat).
    "tnat": (OpKind.CMP, 1),
    # Memory
    "ld1": (OpKind.LOAD, 1),
    "ld2": (OpKind.LOAD, 1),
    "ld4": (OpKind.LOAD, 1),
    "ld8": (OpKind.LOAD, 1),
    "ld8.s": (OpKind.LOAD, 1),  # control-speculative load
    "ld8.fill": (OpKind.LOAD, 1),  # restore register + NaT from UNAT
    "st1": (OpKind.STORE, 1),
    "st2": (OpKind.STORE, 1),
    "st4": (OpKind.STORE, 1),
    "st8": (OpKind.STORE, 1),
    "st8.spill": (OpKind.STORE, 1),  # store register, NaT into UNAT
    # Control
    "br": (OpKind.BRANCH, 1),  # unconditional
    "br.cond": (OpKind.BRANCH, 1),  # predicated by qp
    "br.call": (OpKind.BRANCH, 1),  # direct call, writes out BR
    "br.call.ind": (OpKind.BRANCH, 1),  # indirect call through BR
    "br.ind": (OpKind.BRANCH, 1),  # indirect jump through BR
    "br.ret": (OpKind.BRANCH, 1),
    "chk.s": (OpKind.CHK, 1),  # branch to recovery if NaT set
    "mov.tobr": (OpKind.MOVBR, 1),  # BR <- GR (faults on NaT: policy L3)
    "mov.frombr": (OpKind.MOVBR, 1),  # GR <- BR
    "mov.toar": (OpKind.MOVAR, 1),  # AR <- GR
    "mov.fromar": (OpKind.MOVAR, 1),  # GR <- AR
    # Misc
    "break": (OpKind.SYS, 1),
    "nop": (OpKind.NOP, 1),
    # Proposed architectural enhancements (paper section 4.4 / 6.3)
    "settag": (OpKind.ALU, 1),  # set NaT bit of a register
    "cleartag": (OpKind.ALU, 1),  # clear NaT bit of a register
}

LOAD_SIZES = {"ld1": 1, "ld2": 2, "ld4": 4, "ld8": 8, "ld8.s": 8, "ld8.fill": 8}
STORE_SIZES = {"st1": 1, "st2": 2, "st4": 4, "st8": 8, "st8.spill": 8}

#: Flat mnemonic->kind and mnemonic->latency views of OPCODES, so hot
#: paths (dispatch table construction, the predecoder) can do one dict
#: lookup instead of tuple indexing through a property call.
OP_KIND = {op: kind for op, (kind, _lat) in OPCODES.items()}
OP_LATENCY = {op: lat for op, (_kind, lat) in OPCODES.items()}

# Roles attached to instrumentation-inserted instructions so the perf
# counters can attribute cycles (paper Fig. 9 breakdown).
ROLE_USER = None
ROLE_TAG_COMPUTE = "tag_compute"  # virtual->tag address arithmetic
ROLE_TAG_MEM = "tag_mem"  # bitmap load/store
ROLE_TAINT_SET = "taint_set"  # setting/clearing NaT on data registers
ROLE_RELAX = "relax"  # compare-relaxation code
ROLE_NATGEN = "natgen"  # per-function NaT-source generation
ROLE_LIFT = "lift"  # software tag propagation in the LIFT baseline


@dataclass
class Instruction:
    """One decoded instruction.

    ``outs``/``ins`` list register operands; for memory operations the
    address register is in ``ins`` (and the stored value too, for
    stores), while the loaded destination is in ``outs``.
    """

    op: str
    qp: int = 0  # qualifying predicate index (0 = always)
    outs: Tuple[Reg, ...] = ()
    ins: Tuple[Reg, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None  # label for branches / chk recovery
    #: Relocation: the loader patches ``imm`` with the address of this
    #: data symbol (``"name"``) or function (``"&name"``) at load time.
    sym: Optional[str] = None
    role: Optional[str] = ROLE_USER  # instrumentation role (Fig. 9)
    origin: Optional[str] = None  # 'load'|'store'|'cmp'|'func' for roles
    comment: str = ""

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode: {self.op}")

    @property
    def kind(self) -> OpKind:
        """Opcode family (ALU, load, branch, ...)."""
        return OP_KIND[self.op]

    @property
    def latency(self) -> int:
        """Base issue latency in cycles."""
        return OP_LATENCY[self.op]

    @property
    def access_size(self) -> int:
        """Memory access size in bytes (loads/stores only)."""
        if self.op in LOAD_SIZES:
            return LOAD_SIZES[self.op]
        if self.op in STORE_SIZES:
            return STORE_SIZES[self.op]
        raise ValueError(f"{self.op} is not a memory operation")

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    def with_role(self, role: str, origin: Optional[str] = None) -> "Instruction":
        """Copy of this instruction tagged with an instrumentation role."""
        return replace(self, role=role, origin=origin)

    def __str__(self) -> str:
        qp = f"(p{self.qp}) " if self.qp else ""
        parts = [self.op]
        operands = []
        if self.outs:
            operands.append(", ".join(str(r) for r in self.outs))
        rhs = []
        if self.ins:
            rhs.extend(str(r) for r in self.ins)
        if self.imm is not None:
            rhs.append(str(self.imm))
        if self.target is not None:
            rhs.append(self.target)
        if operands and rhs:
            return f"{qp}{parts[0]} {operands[0]} = {', '.join(rhs)}"
        if operands:
            return f"{qp}{parts[0]} {operands[0]}"
        if rhs:
            return f"{qp}{parts[0]} {', '.join(rhs)}"
        return f"{qp}{parts[0]}"


@dataclass
class Label:
    """A position marker in an instruction stream."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


def is_label(item: object) -> bool:
    """True if the stream item is a Label."""
    return isinstance(item, Label)
