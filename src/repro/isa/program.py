"""Program container: code stream, labels, functions and data items."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.instruction import Instruction, Label


@dataclass
class DataItem:
    """A static data object (global variable, string literal, table)."""

    name: str
    size: int
    init: bytes = b""
    align: int = 8

    def __post_init__(self) -> None:
        if len(self.init) > self.size:
            raise ValueError(f"initialiser longer than {self.name} ({self.size})")


@dataclass
class Program:
    """A fully linked guest program.

    ``labels`` maps every label to an instruction index in the flat
    ``code`` list; ``functions`` maps function entry labels to
    ``(start, end)`` index ranges (end exclusive) used for code-size
    accounting and per-function instrumentation statistics.
    """

    code: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    functions: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    data: List[DataItem] = field(default_factory=list)
    natives: List[str] = field(default_factory=list)
    entry: str = "main"

    def label_index(self, name: str) -> int:
        """Instruction index of a label (KeyError if undefined)."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"undefined label: {name}") from None

    def function_code(self, name: str) -> List[Instruction]:
        """The instruction slice of one function."""
        start, end = self.functions[name]
        return self.code[start:end]

    def listing(self) -> str:
        """Human-readable disassembly with labels interleaved."""
        by_index: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            by_index.setdefault(idx, []).append(name)
        lines: List[str] = []
        for i, instr in enumerate(self.code):
            for name in sorted(by_index.get(i, ())):
                lines.append(f"{name}:")
            comment = f"  // {instr.comment}" if instr.comment else ""
            lines.append(f"    {instr}{comment}")
        for name in sorted(by_index.get(len(self.code), ())):
            lines.append(f"{name}:")
        return "\n".join(lines)


class ProgramBuilder:
    """Accumulates labels/instructions into a :class:`Program`.

    Functions are delimited with :meth:`begin_function` /
    :meth:`end_function`; their entry label is emitted automatically.
    """

    def __init__(self) -> None:
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._functions: Dict[str, Tuple[int, int]] = {}
        self._data: List[DataItem] = []
        self._natives: List[str] = []
        self._open_function: Optional[Tuple[str, int]] = None

    def label(self, name: str) -> None:
        """Define a label at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        self._labels[name] = len(self._code)

    def emit(self, instr: Instruction) -> None:
        """Append one instruction."""
        self._code.append(instr)

    def extend(self, items: Iterable[object]) -> None:
        """Append a mixed stream of labels and instructions."""
        for item in items:
            if isinstance(item, Label):
                self.label(item.name)
            elif isinstance(item, Instruction):
                self.emit(item)
            else:
                raise TypeError(f"cannot emit {type(item).__name__}")

    def begin_function(self, name: str) -> None:
        """Open a function (emits its entry label)."""
        if self._open_function is not None:
            raise ValueError("nested function definition")
        self.label(name)
        self._open_function = (name, len(self._code))

    def end_function(self) -> None:
        """Close the open function and record its extent."""
        if self._open_function is None:
            raise ValueError("end_function without begin_function")
        name, start = self._open_function
        self._functions[name] = (start, len(self._code))
        self._open_function = None

    def add_data(self, item: DataItem) -> None:
        """Declare a static data item."""
        if any(existing.name == item.name for existing in self._data):
            raise ValueError(f"duplicate data symbol: {item.name}")
        self._data.append(item)

    def declare_native(self, name: str) -> None:
        """Register a runtime-provided function name."""
        if name not in self._natives:
            self._natives.append(name)

    def build(self, entry: str = "main") -> Program:
        """Finalise into a Program (validates branch targets)."""
        if self._open_function is not None:
            raise ValueError(f"unterminated function {self._open_function[0]}")
        program = Program(
            code=self._code,
            labels=self._labels,
            functions=self._functions,
            data=self._data,
            natives=self._natives,
            entry=entry,
        )
        _check_targets(program)
        return program


def _check_targets(program: Program) -> None:
    """All branch/chk targets must resolve to a label (natives excluded)."""
    known = set(program.labels) | set(program.natives)
    for instr in program.code:
        if instr.target is not None and instr.target not in known:
            raise ValueError(f"undefined branch target {instr.target!r} in {instr}")
