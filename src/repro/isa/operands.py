"""Register operands for the IA-64-like ISA.

The simulated processor follows the Itanium register model that SHIFT
relies on:

* 128 general registers ``r0``..``r127``, each extended with a *NaT*
  (Not-a-Thing) bit -- the deferred-exception token that SHIFT reuses as
  the taint tag.
* 64 one-bit predicate registers ``p0``..``p63`` (``p0`` is hardwired to
  true) used for predication and compare results.
* 8 branch registers ``b0``..``b7``.
* Application registers; we model only ``ar.unat``, the user NaT
  collection register used by ``st8.spill``/``ld8.fill``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_GR = 128
NUM_PR = 64
NUM_BR = 8

# Software conventions used by the compiler and runtime (loosely the
# Itanium ABI):
#   r0        always zero
#   r1        global pointer (unused here)
#   r2, r3    assembler/instrumentation scratch
#   r8        return value
#   r9..r11   instrumentation scratch
#   r12       stack pointer
#   r13       thread pointer (unused)
#   r4..r7    callee-saved allocatable
#   r14..r30  caller-saved allocatable
#   r31       reserved NaT-source register in instrumented code
#   r32..r39  argument registers
GR_ZERO = 0
GR_RET = 8
GR_SP = 12
GR_SYSNUM = 15
GR_NAT_SOURCE = 31
GR_FIRST_ARG = 32
NUM_ARG_REGS = 8


class RegClass(enum.Enum):
    """Architectural register files."""

    GR = "r"  # general register (64-bit value + NaT bit)
    PR = "p"  # predicate register (1 bit)
    BR = "b"  # branch register (64-bit target)
    AR = "ar"  # application register (by name)


@dataclass(frozen=True)
class Reg:
    """A reference to one architectural register."""

    cls: RegClass
    index: int

    def __post_init__(self) -> None:
        limits = {
            RegClass.GR: NUM_GR,
            RegClass.PR: NUM_PR,
            RegClass.BR: NUM_BR,
        }
        limit = limits.get(self.cls)
        if limit is not None and not 0 <= self.index < limit:
            raise ValueError(f"{self.cls.name} index {self.index} out of range")

    def __str__(self) -> str:
        if self.cls is RegClass.AR:
            return f"ar.{self.index}"
        return f"{self.cls.value}{self.index}"

    @property
    def is_gr(self) -> bool:
        """True for general registers."""
        return self.cls is RegClass.GR

    @property
    def is_pr(self) -> bool:
        """True for predicate registers."""
        return self.cls is RegClass.PR

    @property
    def is_br(self) -> bool:
        """True for branch registers."""
        return self.cls is RegClass.BR


def GR(index: int) -> Reg:
    """General register ``r<index>``."""
    return Reg(RegClass.GR, index)


def PR(index: int) -> Reg:
    """Predicate register ``p<index>``."""
    return Reg(RegClass.PR, index)


def BR(index: int) -> Reg:
    """Branch register ``b<index>``."""
    return Reg(RegClass.BR, index)


R0 = GR(GR_ZERO)
SP = GR(GR_SP)
RET = GR(GR_RET)
P0 = PR(0)


def parse_reg(text: str) -> Reg:
    """Parse a register name such as ``r14``, ``p6``, ``b0`` or ``ar.unat``."""
    text = text.strip()
    if text.startswith("ar."):
        # Only ar.unat is modelled; index 36 is its Itanium number.
        if text != "ar.unat":
            raise ValueError(f"unknown application register: {text}")
        return Reg(RegClass.AR, 36)
    if not text or text[0] not in "rpb" or not text[1:].isdigit():
        raise ValueError(f"malformed register name: {text!r}")
    cls = {"r": RegClass.GR, "p": RegClass.PR, "b": RegClass.BR}[text[0]]
    return Reg(cls, int(text[1:]))


AR_UNAT = Reg(RegClass.AR, 36)
