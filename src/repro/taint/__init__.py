"""SHIFT taint tracking: bitmap, policies, engine."""

from repro.taint.bitmap import GRANULARITY_BYTE, GRANULARITY_WORD, TaintMap
from repro.taint.engine import AlertRecord, PolicyEngine, SecurityAlert
from repro.taint.policy import (
    DEFAULT_ENABLED,
    FAULT_KIND_POLICY,
    HIGH_LEVEL_CHECKS,
    POLICY_BY_ID,
    Policy,
    PolicyConfig,
    PolicyConfigError,
    PolicySettings,
    PolicyViolation,
    SHELL_META_CHARS,
    SQL_META_CHARS,
    TABLE1,
    USE_POINT_POLICIES,
    format_table1,
    parse_policy_config,
)

__all__ = [
    "AlertRecord",
    "DEFAULT_ENABLED",
    "FAULT_KIND_POLICY",
    "GRANULARITY_BYTE",
    "GRANULARITY_WORD",
    "HIGH_LEVEL_CHECKS",
    "POLICY_BY_ID",
    "Policy",
    "PolicyConfig",
    "PolicyConfigError",
    "PolicyEngine",
    "PolicySettings",
    "PolicyViolation",
    "SecurityAlert",
    "SHELL_META_CHARS",
    "SQL_META_CHARS",
    "TABLE1",
    "TaintMap",
    "USE_POINT_POLICIES",
    "format_table1",
    "parse_policy_config",
]
