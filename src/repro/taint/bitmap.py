"""Host-side view of the in-memory taint bitmap.

The bitmap itself lives in *guest* memory, in virtual-address region 0
(the tag space), exactly as in the paper: instrumented guest code reads
and updates it with ordinary ``ld1``/``st1`` instructions.  This class
is the host-side accessor used by taint sources (to mark incoming data),
by native library taint summaries (the paper's "wrap functions") and by
the policy engine (to inspect argument taint at checks).

Range operations work on whole tag bytes wherever the data range is
contiguous in tag space: at byte granularity one tag byte covers eight
data bytes, so marking a 4 KiB network buffer touches 512 tag bytes via
page-slice writes instead of 4096 read-modify-write scalar accesses.
Only the partial tag bytes at the edges of a range still need a
read-modify-write.  Ranges that straddle a region boundary (which never
happens for real buffers) fall back to the per-granule reference loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.provenance import ProvenanceTracker
    from repro.obs.tracer import Tracer

from repro.mem.address import IMPL_MASK, linearize, region_of, tag_address
from repro.mem.memory import SparseMemory

GRANULARITY_BYTE = 1
GRANULARITY_WORD = 8  # a "word" is 8 bytes throughout the paper


def pack_flags(flags) -> bytes:
    """Pack per-byte taint flags into a bit vector (LSB-first).

    This is the encoding :class:`repro.fleet.wire.TaggedMessage` puts on
    the wire: bit ``i & 7`` of packed byte ``i >> 3`` is the taint of
    payload byte ``i`` — the same layout as the in-memory bitmap at byte
    granularity, so a tag slice costs 1/8th of its payload.
    """
    packed = bytearray((len(flags) + 7) >> 3)
    for i, flag in enumerate(flags):
        if flag:
            packed[i >> 3] |= 1 << (i & 7)
    return bytes(packed)


def unpack_flags(packed: bytes, length: int) -> List[bool]:
    """Inverse of :func:`pack_flags` for a payload of ``length`` bytes."""
    if (len(packed) << 3) < length:
        raise ValueError(
            f"packed tag vector covers {len(packed) << 3} bytes, "
            f"payload needs {length}")
    return [bool(packed[i >> 3] & (1 << (i & 7))) for i in range(length)]


def slice_packed(packed: bytes, start: int, length: int) -> bytes:
    """Packed bits for positions ``[start, start+length)`` of a vector.

    Used by the ingress path when a guest ``recv``s a tagged request in
    chunks: each chunk re-applies its own slice of the message's tags.
    """
    if length <= 0:
        return b""
    if (start & 7) == 0:  # byte-aligned: plain slice + canonical tail
        out = bytearray(packed[start >> 3:(start + length + 7) >> 3])
        if length & 7:
            out[-1] &= (1 << (length & 7)) - 1
        return bytes(out)
    return pack_flags(unpack_flags(packed, start + length)[start:])


class TaintMap:
    """Read/write the taint bitmap for a given tracking granularity."""

    def __init__(self, memory: SparseMemory, granularity: int = GRANULARITY_BYTE,
                 flat: bool = False) -> None:
        if granularity not in (GRANULARITY_BYTE, GRANULARITY_WORD):
            raise ValueError("granularity must be 1 (byte) or 8 (word)")
        self.memory = memory
        self.granularity = granularity
        #: Flat (x86-ablation) tag translation -- must match how the
        #: guest was compiled (ShiftOptions.fast_tag_translation).
        self.flat = flat
        #: Optional observability hooks (see :mod:`repro.obs`): a
        #: provenance side table mirroring the bitmap and a tracer for
        #: host-side taint-summary updates.  Both default to None and
        #: add no cost until a Machine wires them with ``tracing=True``.
        self.provenance: Optional["ProvenanceTracker"] = None
        self.tracer: Optional["Tracer"] = None
        #: Incrementally-maintained count of tainted granules.  Every
        #: host-side bitmap write funnels through :meth:`_store_tag_byte`
        #: / :meth:`_write_tag_bytes`, which keep it exact; guest-side
        #: tag stores are accounted by the CPU's ``tag_watch`` hook
        #: (:meth:`on_guest_tag_store`).  Quiescence checks and metrics
        #: read this in O(1) instead of scanning the bitmap.
        self.live_granules = 0
        #: True once a Machine has wired the CPU tag-store watch, i.e.
        #: *every* bitmap write path is counted.  Only then may
        #: ``live_granules == 0`` short-circuit :meth:`any_tainted`
        #: (a bare TaintMap over a hand-driven CPU stays conservative).
        self.counter_authoritative = False
        #: Monotonic stamp bumped on every *real* tag change (writes
        #: that leave the bitmap identical don't count).  The
        #: speculation subsystem compares stamps to prove "no taint
        #: moved while I ran fast" — granule-count equality alone is
        #: unsound (a copy can clear one range and taint another).
        self.mutations = 0
        #: Optional hook called with ``(tag_byte_addr, length)`` after
        #: every real tag change; repro.spec uses it to trip (or note)
        #: taint motion the instant a host-side source or summary fires
        #: inside a speculative epoch.  May raise.
        self.mutation_hook = None

    @property
    def live_bytes(self) -> int:
        """Tainted data bytes implied by the live-granule count."""
        return self.live_granules * self.granularity

    # -- tag-space geometry ------------------------------------------------

    def _lin(self, addr: int) -> int:
        """Linearised tag-space position of a data address."""
        return (addr & IMPL_MASK) if self.flat else linearize(addr)

    def _lin_span(self, addr: int, length: int) -> Optional[Tuple[int, int]]:
        """Linearised positions of the first and last granule of a range.

        Returns None when the range is not provably contiguous in tag
        space (region-crossing or offset-wrapping), in which case the
        caller must take the per-granule path.
        """
        step = self.granularity
        first = addr - (addr % step)
        last_byte = addr + length - 1
        last = last_byte - (last_byte % step)
        if region_of(first) != region_of(last):
            return None
        l0 = self._lin(first)
        l1 = self._lin(last)
        if l1 - l0 != last - first:
            return None  # offset wrapped through unimplemented bits
        return l0, l1

    # -- scalar accessors --------------------------------------------------

    def is_tainted(self, addr: int) -> bool:
        """Taint state of the granule containing ``addr``."""
        tag = tag_address(addr, self.granularity, self.flat)
        if tag.bit is None:  # word level: whole tag byte is a boolean
            return self.memory.load(tag.byte_addr, 1) != 0
        return bool(self.memory.load(tag.byte_addr, 1) & tag.mask)

    def set_taint(self, addr: int, tainted: bool = True) -> None:
        """Set/clear the tag of the granule containing ``addr``."""
        tag = tag_address(addr, self.granularity, self.flat)
        if tag.bit is None:
            self._store_tag_byte(tag.byte_addr, 1 if tainted else 0)
            return
        byte = self.memory.load(tag.byte_addr, 1)
        byte = (byte | tag.mask) if tainted else (byte & ~tag.mask)
        self._store_tag_byte(tag.byte_addr, byte)

    # -- counted write primitives ------------------------------------------

    def _popcount(self, data: bytes) -> int:
        """Tainted granules encoded by a run of tag bytes."""
        if self.granularity == GRANULARITY_WORD:
            return len(data) - data.count(0)
        return int.from_bytes(data, "little").bit_count()

    def _store_tag_byte(self, byte_addr: int, new: int) -> None:
        old = self.memory.load(byte_addr, 1)
        if old == new:
            return
        if self.granularity == GRANULARITY_WORD:
            self.live_granules += (1 if new else 0) - (1 if old else 0)
        else:
            self.live_granules += new.bit_count() - old.bit_count()
        self.memory.store(byte_addr, 1, new)
        self.mutations += 1
        if self.mutation_hook is not None:
            self.mutation_hook(byte_addr, 1)

    def _write_tag_bytes(self, byte_addr: int, data: bytes,
                         old: Optional[bytes] = None) -> None:
        if old is None:
            old = bytes(self.memory.read_bytes(byte_addr, len(data)))
        if old == data:
            return
        self.live_granules += self._popcount(data) - self._popcount(old)
        self.memory.write_bytes(byte_addr, data)
        self.mutations += 1
        if self.mutation_hook is not None:
            self.mutation_hook(byte_addr, len(data))

    # -- batched internals -------------------------------------------------

    def _rmw_tag_byte(self, byte_addr: int, mask: int, tainted: bool) -> None:
        byte = self.memory.load(byte_addr, 1)
        byte = (byte | mask) if tainted else (byte & ~mask & 0xFF)
        self._store_tag_byte(byte_addr, byte)

    def _fill_tags(self, l0: int, l1: int, tainted: bool) -> None:
        """Set/clear every granule with linearised position in [l0, l1]."""
        if self.granularity == GRANULARITY_WORD:
            b0, b1 = l0 >> 3, l1 >> 3
            self._write_tag_bytes(
                b0, (b"\x01" if tainted else b"\x00") * (b1 - b0 + 1))
            return
        b0, b1 = l0 >> 3, l1 >> 3
        head_mask = (0xFF << (l0 & 7)) & 0xFF
        tail_mask = 0xFF >> (7 - (l1 & 7))
        if b0 == b1:
            self._rmw_tag_byte(b0, head_mask & tail_mask, tainted)
            return
        if head_mask != 0xFF:
            self._rmw_tag_byte(b0, head_mask, tainted)
            b0 += 1
        if tail_mask != 0xFF:
            self._rmw_tag_byte(b1, tail_mask, tainted)
            b1 -= 1
        if b1 >= b0:
            self._write_tag_bytes(
                b0, (b"\xff" if tainted else b"\x00") * (b1 - b0 + 1))

    def _set_range_tags(self, addr: int, length: int, tainted: bool) -> None:
        """Range set/clear without the provenance/tracer side effects."""
        span = self._lin_span(addr, length)
        if span is not None:
            self._fill_tags(span[0], span[1], tainted)
            return
        step = self.granularity
        granule = addr - (addr % step)
        last = addr + length - 1
        while granule <= last:
            self.set_taint(granule, tainted)
            granule += step

    # -- range operations --------------------------------------------------

    def set_range(self, addr: int, length: int, tainted: bool = True) -> None:
        """Mark ``length`` bytes starting at ``addr``.

        Clearing also forgets any provenance attribution for the range;
        origin *recording* is the taint source's job (it knows the
        source kind and stream position — see ``GuestOS._taint_input``).
        """
        if length <= 0:
            return
        self._set_range_tags(addr, length, tainted)
        if not tainted and self.provenance is not None:
            self.provenance.clear_range(addr, length)
        if self.tracer is not None:
            from repro.obs.events import TaintStoreEvent

            self.tracer.emit(TaintStoreEvent(
                op="set" if tainted else "clear", addr=addr, length=length))

    def taint_flags(self, addr: int, length: int) -> List[bool]:
        """Per-byte taint flags for ``[addr, addr+length)``."""
        if length <= 0:
            return []
        if not self.any_tainted(addr, length):
            return [False] * length
        span = self._lin_span(addr, length)
        if span is None:
            return self._taint_flags_slow(addr, length)
        l0, l1 = span
        b0 = l0 >> 3
        data = self.memory.read_bytes(b0, (l1 >> 3) - b0 + 1)
        if self.granularity == GRANULARITY_WORD:
            phase = addr % 8
            return [bool(data[(phase + i) >> 3]) for i in range(length)]
        lin = self._lin(addr)
        return [bool(data[((lin + i) >> 3) - b0] & (1 << ((lin + i) & 7)))
                for i in range(length)]

    def _taint_flags_slow(self, addr: int, length: int) -> List[bool]:
        flags: List[bool] = []
        cached_granule = None
        cached_value = False
        for offset in range(length):
            a = addr + offset
            granule = a - (a % self.granularity)
            if granule != cached_granule:
                cached_granule = granule
                cached_value = self.is_tainted(granule)
            flags.append(cached_value)
        return flags

    def any_tainted(self, addr: int, length: int) -> bool:
        """True if any granule in the range is tainted."""
        if length <= 0:
            return False
        if self.counter_authoritative and self.live_granules == 0:
            return False
        span = self._lin_span(addr, length)
        if span is None:
            step = self.granularity
            granule = addr - (addr % step)
            last = addr + length - 1
            while granule <= last:
                if self.is_tainted(granule):
                    return True
                granule += step
            return False
        l0, l1 = span
        mem = self.memory
        b0, b1 = l0 >> 3, l1 >> 3
        if self.granularity == GRANULARITY_BYTE:
            head_mask = (0xFF << (l0 & 7)) & 0xFF
            tail_mask = 0xFF >> (7 - (l1 & 7))
            if b0 == b1:
                return bool(mem.load(b0, 1) & head_mask & tail_mask)
            if head_mask != 0xFF:
                if mem.load(b0, 1) & head_mask:
                    return True
                b0 += 1
            if tail_mask != 0xFF:
                if mem.load(b1, 1) & tail_mask:
                    return True
                b1 -= 1
        pos = b0
        while pos <= b1:
            chunk = min(4096, b1 - pos + 1)
            if any(mem.read_bytes(pos, chunk)):
                return True
            pos += chunk
        return False

    def tainted_spans(self, addr: int, length: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(offset, span_length)`` runs of tainted bytes.

        Lazy: a fully-clean range yields nothing after one batched
        ``any_tainted`` probe, without materialising per-byte flags.
        """
        if length <= 0 or not self.any_tainted(addr, length):
            return
        flags = self.taint_flags(addr, length)
        start = None
        for i, tainted in enumerate(flags):
            if tainted and start is None:
                start = i
            elif not tainted and start is not None:
                yield (start, i - start)
                start = None
        if start is not None:
            yield (start, length - start)

    # -- wire export/import (repro.fleet) ----------------------------------

    def export_range(self, addr: int, length: int) -> bytes:
        """Packed per-byte taint bits for ``[addr, addr+length)``.

        Always byte-granular regardless of tracking granularity (word
        tags expand to eight identical bits), so the exported vector is
        a superset a consumer at either granularity can re-apply.
        """
        if length <= 0:
            return b""
        return pack_flags(self.taint_flags(addr, length))

    def import_range(self, addr: int, length: int, packed: bytes) -> None:
        """Authoritatively apply packed per-byte tags to a range.

        Granules whose bit is clear are *cleared* (the sender's view of
        the data replaces any stale local tags), and provenance for the
        range is forgotten — re-attribution is the ingress path's job,
        exactly as with :meth:`set_range`.  At word granularity a word
        containing any tainted byte coarsens to fully tainted, the same
        over-approximation every word-level store makes.
        """
        if length <= 0:
            return
        flags = unpack_flags(packed, length)
        span = self._lin_span(addr, length)
        if span is None:
            # Region-crossing fallback: one authoritative write per
            # granule (never clear-then-set, so no transient state).
            step = self.granularity
            last = addr + length - 1
            granule = addr - (addr % step)
            while granule <= last:
                lo = max(granule, addr) - addr
                hi = min(granule + step - 1, last) - addr
                self.set_taint(granule, any(flags[lo:hi + 1]))
                granule += step
        else:
            # Single pass: build the final tag bytes for the whole span
            # (preserving uncovered bits of the edge bytes) and commit
            # them with one counted write.  A metrics snapshot taken
            # concurrently therefore sees either the old tags or the new
            # — never the half-applied all-clear state the old
            # clear-then-set implementation exposed.
            l0, l1 = span
            b0, b1 = l0 >> 3, l1 >> 3
            old = bytes(self.memory.read_bytes(b0, b1 - b0 + 1))
            new = bytearray(old)
            if self.granularity == GRANULARITY_WORD:
                first = addr - (addr % 8)
                last = addr + length - 1
                for w in range(b1 - b0 + 1):
                    lo = max(first + 8 * w, addr) - addr
                    hi = min(first + 8 * w + 7, last) - addr
                    new[w] = 1 if any(flags[lo:hi + 1]) else 0
            else:
                lin0 = self._lin(addr)
                for i in range(length):
                    pos = lin0 + i
                    idx = (pos >> 3) - b0
                    bit = 1 << (pos & 7)
                    if flags[i]:
                        new[idx] |= bit
                    else:
                        new[idx] &= ~bit & 0xFF
            self._write_tag_bytes(b0, bytes(new), old=old)
        if self.provenance is not None:
            self.provenance.clear_range(addr, length)
        if self.tracer is not None:
            from repro.obs.events import TaintStoreEvent

            self.tracer.emit(TaintStoreEvent(
                op="import", addr=addr, length=length))

    def copy_taint(self, dst: int, src: int, length: int) -> None:
        """Propagate taint from ``src`` to ``dst`` byte ranges.

        This is the semantic a *wrap function* for an uninstrumented
        (assembly) routine such as ``memcpy`` applies (paper 4.2).
        """
        if length > 0:
            self._copy_tags(dst, src, length)
        if self.provenance is not None:
            self.provenance.copy_range(dst, src, length)
        if self.tracer is not None:
            from repro.obs.events import TaintStoreEvent

            self.tracer.emit(TaintStoreEvent(
                op="copy", addr=dst, length=length, src=src))

    def _copy_tags(self, dst: int, src: int, length: int) -> None:
        if not self.any_tainted(src, length):
            # A clean source clears the destination range outright.
            self._set_range_tags(dst, length, False)
            return
        sspan = self._lin_span(src, length)
        dspan = self._lin_span(dst, length)
        if sspan is None or dspan is None or (src & 7) != (dst & 7):
            # Misaligned (different bit phase within the tag byte):
            # per-byte reference semantics.
            flags = self.taint_flags(src, length)
            for offset, tainted in enumerate(flags):
                self.set_taint(dst + offset, tainted)
            return
        mem = self.memory
        sb0 = sspan[0] >> 3
        data = mem.read_bytes(sb0, (sspan[1] >> 3) - sb0 + 1)
        dl0, dl1 = dspan
        db0, db1 = dl0 >> 3, dl1 >> 3
        if self.granularity == GRANULARITY_WORD:
            # Normalise to the 0/1 encoding set_taint writes.
            self._write_tag_bytes(db0, bytes(1 if b else 0 for b in data))
            return
        head_mask = (0xFF << (dl0 & 7)) & 0xFF
        tail_mask = 0xFF >> (7 - (dl1 & 7))
        if db0 == db1:
            mask = head_mask & tail_mask
            old = mem.load(db0, 1)
            self._store_tag_byte(db0, (old & ~mask & 0xFF) | (data[0] & mask))
            return
        lo = 0
        hi = len(data)
        if head_mask != 0xFF:
            old = mem.load(db0, 1)
            self._store_tag_byte(
                db0, (old & ~head_mask & 0xFF) | (data[0] & head_mask))
            db0 += 1
            lo = 1
        if tail_mask != 0xFF:
            old = mem.load(db1, 1)
            self._store_tag_byte(
                db1, (old & ~tail_mask & 0xFF) | (data[-1] & tail_mask))
            db1 -= 1
            hi -= 1
        if hi > lo:
            self._write_tag_bytes(db0, bytes(data[lo:hi]))

    # -- guest-store accounting (CPU tag_watch hook) -----------------------

    def on_guest_tag_store(self, addr: int, size: int, value: int) -> None:
        """Account a guest store into tag space, *before* it commits.

        Wired as ``cpu.tag_watch`` by the Machine: the execution engines
        call it for any store whose target lies below the tag-space
        limit, so instrumented tag updates (``st1``/``st2`` emitted by
        the SHIFT pass) keep :attr:`live_granules` exact without the
        host ever scanning the bitmap.
        """
        old = self.memory.load(addr, size)
        value &= (1 << (size * 8)) - 1
        if old == value:
            return
        if self.granularity == GRANULARITY_WORD:
            delta = 0
            for i in range(size):
                delta += 1 if (value >> (8 * i)) & 0xFF else 0
                delta -= 1 if (old >> (8 * i)) & 0xFF else 0
            self.live_granules += delta
        else:
            self.live_granules += value.bit_count() - old.bit_count()
        self.mutations += 1
        if self.mutation_hook is not None:
            self.mutation_hook(addr, size)
