"""Host-side view of the in-memory taint bitmap.

The bitmap itself lives in *guest* memory, in virtual-address region 0
(the tag space), exactly as in the paper: instrumented guest code reads
and updates it with ordinary ``ld1``/``st1`` instructions.  This class
is the host-side accessor used by taint sources (to mark incoming data),
by native library taint summaries (the paper's "wrap functions") and by
the policy engine (to inspect argument taint at checks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.provenance import ProvenanceTracker
    from repro.obs.tracer import Tracer

from repro.mem.address import tag_address
from repro.mem.memory import SparseMemory

GRANULARITY_BYTE = 1
GRANULARITY_WORD = 8  # a "word" is 8 bytes throughout the paper


class TaintMap:
    """Read/write the taint bitmap for a given tracking granularity."""

    def __init__(self, memory: SparseMemory, granularity: int = GRANULARITY_BYTE,
                 flat: bool = False) -> None:
        if granularity not in (GRANULARITY_BYTE, GRANULARITY_WORD):
            raise ValueError("granularity must be 1 (byte) or 8 (word)")
        self.memory = memory
        self.granularity = granularity
        #: Flat (x86-ablation) tag translation -- must match how the
        #: guest was compiled (ShiftOptions.fast_tag_translation).
        self.flat = flat
        #: Optional observability hooks (see :mod:`repro.obs`): a
        #: provenance side table mirroring the bitmap and a tracer for
        #: host-side taint-summary updates.  Both default to None and
        #: add no cost until a Machine wires them with ``tracing=True``.
        self.provenance: Optional["ProvenanceTracker"] = None
        self.tracer: Optional["Tracer"] = None

    def is_tainted(self, addr: int) -> bool:
        """Taint state of the granule containing ``addr``."""
        tag = tag_address(addr, self.granularity, self.flat)
        if tag.bit is None:  # word level: whole tag byte is a boolean
            return self.memory.load(tag.byte_addr, 1) != 0
        return bool(self.memory.load(tag.byte_addr, 1) & tag.mask)

    def set_taint(self, addr: int, tainted: bool = True) -> None:
        """Set/clear the tag of the granule containing ``addr``."""
        tag = tag_address(addr, self.granularity, self.flat)
        if tag.bit is None:
            self.memory.store(tag.byte_addr, 1, 1 if tainted else 0)
            return
        byte = self.memory.load(tag.byte_addr, 1)
        byte = (byte | tag.mask) if tainted else (byte & ~tag.mask)
        self.memory.store(tag.byte_addr, 1, byte)

    def set_range(self, addr: int, length: int, tainted: bool = True) -> None:
        """Mark ``length`` bytes starting at ``addr``.

        Clearing also forgets any provenance attribution for the range;
        origin *recording* is the taint source's job (it knows the
        source kind and stream position — see ``GuestOS._taint_input``).
        """
        if length <= 0:
            return
        step = self.granularity
        first = addr - (addr % step)
        last = addr + length - 1
        granule = first
        while granule <= last:
            self.set_taint(granule, tainted)
            granule += step
        if not tainted and self.provenance is not None:
            self.provenance.clear_range(addr, length)
        if self.tracer is not None:
            from repro.obs.events import TaintStoreEvent

            self.tracer.emit(TaintStoreEvent(
                op="set" if tainted else "clear", addr=addr, length=length))

    def taint_flags(self, addr: int, length: int) -> List[bool]:
        """Per-byte taint flags for ``[addr, addr+length)``."""
        flags: List[bool] = []
        cached_granule = None
        cached_value = False
        for offset in range(length):
            a = addr + offset
            granule = a - (a % self.granularity)
            if granule != cached_granule:
                cached_granule = granule
                cached_value = self.is_tainted(granule)
            flags.append(cached_value)
        return flags

    def any_tainted(self, addr: int, length: int) -> bool:
        """True if any granule in the range is tainted."""
        step = self.granularity
        first = addr - (addr % step)
        last = addr + length - 1
        granule = first
        while granule <= last:
            if self.is_tainted(granule):
                return True
            granule += step
        return False

    def tainted_spans(self, addr: int, length: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(offset, span_length)`` runs of tainted bytes."""
        flags = self.taint_flags(addr, length)
        start = None
        for i, tainted in enumerate(flags):
            if tainted and start is None:
                start = i
            elif not tainted and start is not None:
                yield (start, i - start)
                start = None
        if start is not None:
            yield (start, length - start)

    def copy_taint(self, dst: int, src: int, length: int) -> None:
        """Propagate taint from ``src`` to ``dst`` byte ranges.

        This is the semantic a *wrap function* for an uninstrumented
        (assembly) routine such as ``memcpy`` applies (paper 4.2).
        """
        flags = self.taint_flags(src, length)
        for offset, tainted in enumerate(flags):
            self.set_taint(dst + offset, tainted)
        if self.provenance is not None:
            self.provenance.copy_range(dst, src, length)
        if self.tracer is not None:
            from repro.obs.events import TaintStoreEvent

            self.tracer.emit(TaintStoreEvent(
                op="copy", addr=dst, length=length, src=src))
