"""The policy engine: turns taint events into security alerts.

Low-level policies (L1-L3) trigger on NaT-consumption faults raised by
the processor; high-level policies (H1-H5) are checked by the runtime at
semantic *use points* (``fopen``, ``system``, SQL execution, HTML
output) against the in-memory taint bitmap, exactly the split the paper
describes in sections 3.3.3 and 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from repro.obs.provenance import TaintOrigin
    from repro.obs.tracer import Tracer

from repro.cpu.faults import Fault, NaTConsumptionFault
from repro.taint.bitmap import TaintMap
from repro.taint.policy import (
    FAULT_KIND_POLICY,
    HIGH_LEVEL_CHECKS,
    POLICY_BY_ID,
    PolicyConfig,
    PolicyViolation,
    USE_POINT_POLICIES,
)


class SecurityAlert(Exception):
    """Raised when an enabled policy detects an exploit."""

    def __init__(self, violation: PolicyViolation, context: str = "") -> None:
        policy = POLICY_BY_ID[violation.policy_id]
        where = f" [{context}]" if context else ""
        super().__init__(
            f"SECURITY ALERT {violation.policy_id} ({policy.attack}): "
            f"{violation.message}{where}"
        )
        self.violation = violation
        self.context = context

    @property
    def policy_id(self) -> str:
        """Id of the policy that fired (e.g. 'L2')."""
        return self.violation.policy_id


@dataclass
class AlertRecord:
    """A logged alert (used when the engine runs in record mode).

    ``pc``/``instruction_count`` locate the detection in the execution;
    ``origins`` is the taint-provenance chain (populated when the
    machine runs with ``tracing=True``; see :mod:`repro.obs`).
    """

    policy_id: str
    message: str
    context: str = ""
    pc: Optional[int] = None
    instruction_count: int = 0
    origins: List["TaintOrigin"] = field(default_factory=list)


@dataclass
class PolicyEngine:
    """Checks taint uses against the configured policies."""

    config: PolicyConfig
    taint_map: TaintMap
    #: 'raise' aborts the guest on the first alert (the paper's default
    #: handling); 'record' logs alerts and lets execution continue, which
    #: the experiment harness uses to count detections; 'recover' raises
    #: like 'raise' but the machine's resilience supervisor catches the
    #: alert, rolls back to the last checkpoint and quarantines the
    #: offending request (see :mod:`repro.resil.recovery`).
    mode: str = "raise"
    alerts: List[AlertRecord] = field(default_factory=list)
    #: Optional observability hooks, wired by the Machine when tracing
    #: is enabled; both stay None on the zero-overhead default path.
    tracer: Optional["Tracer"] = None
    cpu: Optional[object] = None

    def _instruction_count(self) -> int:
        if self.cpu is None:
            return 0
        return self.cpu.counters.instructions

    def _report(self, violation: PolicyViolation, context: str,
                pc: Optional[int] = None,
                origins: Optional[List["TaintOrigin"]] = None) -> None:
        record = AlertRecord(
            violation.policy_id, violation.message, context,
            pc=pc,
            instruction_count=self._instruction_count(),
            origins=list(origins or ()),
        )
        self.alerts.append(record)
        if self.tracer is not None:
            from repro.obs.events import AlertEvent

            self.tracer.emit(AlertEvent(
                policy_id=record.policy_id,
                message=record.message,
                context=record.context,
                pc=-1 if record.pc is None else record.pc,
                instruction_count=record.instruction_count,
                origin_ids=tuple(o.origin_id for o in record.origins),
            ))
        if self.mode in ("raise", "recover"):
            alert = SecurityAlert(violation, context)
            # The terminal trace event for this abort was just emitted;
            # Machine.run's incident-report backstop checks this marker.
            alert._obs_traced = self.tracer is not None
            raise alert

    # -- Low-level policies (hardware fault path) -----------------------

    def on_fault(self, cpu: object, fault: Fault) -> None:
        """Fault hook installed on the CPU (L1/L2/L3)."""
        if not isinstance(fault, NaTConsumptionFault):
            return
        policy_id = FAULT_KIND_POLICY.get(fault.kind)
        if policy_id is None or not self.config.is_enabled(policy_id):
            return
        violation = PolicyViolation(policy_id, f"NaT consumption: {fault.kind} at pc={fault.pc}")
        # Register taint carries no per-byte attribution (exactly as the
        # hardware NaT bit does not), so the fault path reports every
        # origin whose taint is still live in memory — for an exploit
        # run that is the offending request/file.
        origins = None
        provenance = getattr(self.taint_map, "provenance", None)
        if provenance is not None:
            origins = provenance.live_origins()
        pc = fault.pc if fault.pc >= 0 else None
        self._report(violation, context=f"pc={fault.pc}", pc=pc, origins=origins)

    # -- High-level policies (semantic use points) ----------------------

    def check_use_point(self, use_point: str, addr: int, data: bytes, context: str = "") -> None:
        """Run every enabled policy registered for ``use_point``.

        ``addr`` locates ``data`` in guest memory so per-byte taint can
        be read from the bitmap.
        """
        policy_ids = USE_POINT_POLICIES.get(use_point)
        if not policy_ids:
            raise ValueError(f"unknown use point {use_point!r}")
        relevant = [pid for pid in policy_ids if self.config.is_enabled(pid)]
        if not relevant:
            return
        flags = self.taint_map.taint_flags(addr, len(data))
        if not any(flags):
            return
        provenance = getattr(self.taint_map, "provenance", None)
        for pid in relevant:
            violation = HIGH_LEVEL_CHECKS[pid](data, flags, self.config.settings)
            if violation is not None:
                origins = None
                if provenance is not None:
                    # Per-byte attribution when the checked buffer still
                    # carries side-table entries; when the guest rebuilt
                    # the data through instrumented stores (which track
                    # taint but not origins), fall back to every origin
                    # with live taint — the same coarsening as register
                    # taint on the fault path.
                    origins = (provenance.origins_in_range(addr, len(data))
                               or provenance.live_origins())
                pc = self.cpu.pc if self.cpu is not None else None
                self._report(violation, context, pc=pc, origins=origins)

    # --------------------------------------------------------------

    def detected(self, policy_id: Optional[str] = None) -> bool:
        """True if any (or the given) policy has alerted."""
        if policy_id is None:
            return bool(self.alerts)
        return any(a.policy_id == policy_id for a in self.alerts)

    def reset(self) -> None:
        """Clear recorded alerts."""
        self.alerts.clear()
