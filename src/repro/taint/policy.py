"""Security policies (paper Table 1) and the policy configuration file.

SHIFT decouples the taint-tracking *mechanism* (NaT bits + bitmap) from
the security *policies*, which are assigned in software by editing a
configuration file read by the instrumentation compiler and the runtime
(paper sections 3.3.1 and 4.2).  This module defines the policy
catalogue and the parser for that configuration format::

    [sources]
    network = tainted
    file = tainted

    [policies]
    H1 = on
    L1 = on
    L2 = on
    L3 = on

    [settings]
    document_root = /www
"""

from __future__ import annotations

import posixpath
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: SQL metacharacters checked by H3 when tainted bytes appear in a query.
SQL_META_CHARS = set(b"'\";")
#: Shell metacharacters checked by H4 in arguments to ``system()``.
SHELL_META_CHARS = set(b";|&`$<>")

_SCRIPT_TAG = re.compile(rb"<\s*script", re.IGNORECASE)


@dataclass(frozen=True)
class PolicyViolation:
    """One detected violation, before it becomes a raised alert."""

    policy_id: str
    message: str
    offset: int = -1


CheckFn = Callable[[bytes, List[bool], "PolicySettings"], Optional[PolicyViolation]]


@dataclass
class PolicySettings:
    """Application-specific knobs referenced by the high-level policies."""

    document_root: str = "/www"


@dataclass(frozen=True)
class Policy:
    """One entry of the paper's Table 1."""

    policy_id: str
    attack: str
    description: str
    level: str  # 'high' or 'low'
    use_point: str  # where the check fires: 'fopen', 'system', 'sql',
    # 'html_output', or a NaT-consumption kind for the low-level ones


def _check_h1(data: bytes, flags: List[bool], settings: PolicySettings) -> Optional[PolicyViolation]:
    """Tainted data cannot be used as an absolute file path."""
    if data.startswith(b"/") and flags and flags[0]:
        return PolicyViolation("H1", f"tainted absolute path {data!r}", 0)
    return None


def _check_h2(data: bytes, flags: List[bool], settings: PolicySettings) -> Optional[PolicyViolation]:
    """Tainted path must not traverse out of the document root."""
    if not any(flags):
        return None
    root = settings.document_root.rstrip("/") or "/"
    path = data.decode("latin-1")
    combined = posixpath.normpath(posixpath.join(root, path.lstrip("/") if not path.startswith("/") else path))
    if path.startswith("/"):
        combined = posixpath.normpath(path)
    inside = combined == root or combined.startswith(root + "/")
    if not inside:
        return PolicyViolation(
            "H2", f"tainted path {data!r} escapes document root {root!r}", 0
        )
    return None


def _check_h3(data: bytes, flags: List[bool], settings: PolicySettings) -> Optional[PolicyViolation]:
    """Tainted data cannot contain SQL metacharacters inside a query."""
    for i, (byte, tainted) in enumerate(zip(data, flags)):
        if tainted and byte in SQL_META_CHARS:
            return PolicyViolation("H3", f"tainted SQL metachar {chr(byte)!r} at {i}", i)
    return None


def _check_h4(data: bytes, flags: List[bool], settings: PolicySettings) -> Optional[PolicyViolation]:
    """Tainted data cannot contain shell metacharacters in system() args."""
    for i, (byte, tainted) in enumerate(zip(data, flags)):
        if tainted and byte in SHELL_META_CHARS:
            return PolicyViolation("H4", f"tainted shell metachar {chr(byte)!r} at {i}", i)
    return None


def _check_h5(data: bytes, flags: List[bool], settings: PolicySettings) -> Optional[PolicyViolation]:
    """No tainted ``<script`` tag may reach the output."""
    for match in _SCRIPT_TAG.finditer(data):
        if any(flags[match.start():match.end()]):
            return PolicyViolation("H5", f"tainted script tag at offset {match.start()}", match.start())
    return None


#: Check functions for the high-level policies, keyed by policy id.
HIGH_LEVEL_CHECKS: Dict[str, CheckFn] = {
    "H1": _check_h1,
    "H2": _check_h2,
    "H3": _check_h3,
    "H4": _check_h4,
    "H5": _check_h5,
}

#: Which high-level policies fire at which use point.
USE_POINT_POLICIES: Dict[str, Tuple[str, ...]] = {
    "fopen": ("H1", "H2"),
    "system": ("H4",),
    "sql": ("H3",),
    "html_output": ("H5",),
}

#: NaT-consumption fault kind -> low-level policy id.
FAULT_KIND_POLICY: Dict[str, str] = {
    "load_addr": "L1",
    "store_addr": "L2",
    "store_value": "L2",
    "branch_move": "L3",
    "ar_move": "L3",
}

#: The paper's Table 1.
TABLE1: Tuple[Policy, ...] = (
    Policy("H1", "Directory Traversal",
           "Tainted data cannot be used as an absolute file path", "high", "fopen"),
    Policy("H2", "Directory Traversal",
           "Tainted data cannot be used as a file path which traverses out of "
           "the document root", "high", "fopen"),
    Policy("H3", "SQL Injection",
           "Tainted data cannot contain SQL meta chars when used as a part of "
           "the SQL string", "high", "sql"),
    Policy("H4", "Command Injection",
           "Tainted data cannot contain Shell meta chars when used as "
           "arguments to system()", "high", "system"),
    Policy("H5", "Cross Site Scripting", "No tainted script tag", "high", "html_output"),
    Policy("L1", "De-referencing tainted pointer",
           "Tainted data cannot be used as a load address", "low", "load_addr"),
    Policy("L2", "Format string vulnerability",
           "Tainted data cannot be used as a store address", "low", "store_addr"),
    Policy("L3", "Modify critical CPU state",
           "Tainted data cannot be moved into special registers", "low", "branch_move"),
)

POLICY_BY_ID: Dict[str, Policy] = {p.policy_id: p for p in TABLE1}

#: The low-level policies are "relatively fixed and usually turned on as
#: the default policies in SHIFT" (paper 5.1).
DEFAULT_ENABLED: Tuple[str, ...] = ("L1", "L2", "L3")


@dataclass
class PolicyConfig:
    """Parsed policy configuration (sources + enabled policies + settings)."""

    tainted_sources: Dict[str, bool] = field(
        default_factory=lambda: {"network": True, "file": True, "stdin": True, "env": False}
    )
    enabled: Dict[str, bool] = field(
        default_factory=lambda: {pid: pid in DEFAULT_ENABLED for pid in POLICY_BY_ID}
    )
    settings: PolicySettings = field(default_factory=PolicySettings)

    def enable(self, *policy_ids: str) -> "PolicyConfig":
        """Turn policies on; returns self for chaining."""
        for pid in policy_ids:
            if pid not in POLICY_BY_ID:
                raise ValueError(f"unknown policy {pid}")
            self.enabled[pid] = True
        return self

    def disable(self, *policy_ids: str) -> "PolicyConfig":
        """Turn policies off; returns self for chaining."""
        for pid in policy_ids:
            if pid not in POLICY_BY_ID:
                raise ValueError(f"unknown policy {pid}")
            self.enabled[pid] = False
        return self

    def is_enabled(self, policy_id: str) -> bool:
        """True if the policy is on."""
        return self.enabled.get(policy_id, False)

    def source_is_tainted(self, source: str) -> bool:
        """True if the input channel is untrusted."""
        return self.tainted_sources.get(source, False)


class PolicyConfigError(ValueError):
    """Malformed policy configuration text."""


def parse_policy_config(text: str) -> PolicyConfig:
    """Parse the configuration-file format described in the paper."""
    config = PolicyConfig()
    section = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip().lower()
            if section not in ("sources", "policies", "settings"):
                raise PolicyConfigError(f"line {line_no}: unknown section [{section}]")
            continue
        if "=" not in line or section is None:
            raise PolicyConfigError(f"line {line_no}: expected key = value inside a section")
        key, value = (part.strip() for part in line.split("=", 1))
        if section == "sources":
            flag = value.lower() in ("tainted", "taint", "untrusted", "on", "true", "yes")
            config.tainted_sources[key.lower()] = flag
        elif section == "policies":
            pid = key.upper()
            if pid not in POLICY_BY_ID:
                raise PolicyConfigError(f"line {line_no}: unknown policy {key!r}")
            config.enabled[pid] = value.lower() in ("on", "true", "yes", "1")
        else:  # settings
            if key == "document_root":
                config.settings.document_root = value
            else:
                raise PolicyConfigError(f"line {line_no}: unknown setting {key!r}")
    return config


def format_table1() -> str:
    """Render the policy catalogue as the paper's Table 1."""
    header = f"{'Policy':<7} {'Attacks to Detect':<30} Description"
    lines = [header, "-" * len(header)]
    for policy in TABLE1:
        lines.append(f"{policy.policy_id:<7} {policy.attack:<30} {policy.description}")
    return "\n".join(lines)
