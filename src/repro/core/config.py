"""User-facing configuration for building a SHIFT-protected guest."""

from __future__ import annotations

from typing import Sequence

from repro.compiler.instrument import GRANULARITY_BYTE, GRANULARITY_WORD, ShiftOptions

#: Names accepted for tracking granularity.
_GRANULARITY_NAMES = {
    "byte": GRANULARITY_BYTE,
    "word": GRANULARITY_WORD,
    GRANULARITY_BYTE: GRANULARITY_BYTE,
    GRANULARITY_WORD: GRANULARITY_WORD,
}

#: Names accepted for the paper's proposed architectural enhancements.
ENHANCEMENT_SET_CLEAR = "set_clear_nat"
ENHANCEMENT_NAT_CMP = "nat_aware_cmp"
ALL_ENHANCEMENTS = (ENHANCEMENT_SET_CLEAR, ENHANCEMENT_NAT_CMP)


def shift_options(
    granularity: object = "byte",
    enhancements: Sequence[str] = (),
    tracking: bool = True,
    relax_compares: bool = True,
    pointer_policy: str = "strict",
) -> ShiftOptions:
    """Build :class:`ShiftOptions` from friendly names.

    ``granularity`` is ``"byte"`` or ``"word"``; ``enhancements`` may
    contain ``"set_clear_nat"`` and/or ``"nat_aware_cmp"`` (the paper's
    proposed instructions, section 6.3); ``tracking=False`` compiles
    without any instrumentation (the baseline).
    """
    if not tracking:
        return ShiftOptions(mode="none")
    for name in enhancements:
        if name not in ALL_ENHANCEMENTS:
            raise ValueError(
                f"unknown enhancement {name!r}; expected one of {ALL_ENHANCEMENTS}"
            )
    try:
        grain = _GRANULARITY_NAMES[granularity]
    except (KeyError, TypeError):
        raise ValueError(f"granularity must be 'byte' or 'word', got {granularity!r}")
    return ShiftOptions(
        mode="shift",
        granularity=grain,
        enh_set_clear=ENHANCEMENT_SET_CLEAR in enhancements,
        enh_nat_cmp=ENHANCEMENT_NAT_CMP in enhancements,
        relax_compares=relax_compares,
        pointer_policy=pointer_policy,
    )
