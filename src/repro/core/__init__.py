"""SHIFT core: the paper's primary contribution behind one clean API.

The mechanism lives in three places — the NaT-bit hardware semantics
(:mod:`repro.cpu`), the instrumentation pass
(:mod:`repro.compiler.instrument`) and the policy engine
(:mod:`repro.taint`) — and this package is the facade that wires them
together for users.
"""

from repro.core.config import (
    ALL_ENHANCEMENTS,
    ENHANCEMENT_NAT_CMP,
    ENHANCEMENT_SET_CLEAR,
    shift_options,
)
from repro.core.shift import (
    RunResult,
    build_machine,
    compile_protected,
    run_machine,
)

__all__ = [
    "ALL_ENHANCEMENTS",
    "ENHANCEMENT_NAT_CMP",
    "ENHANCEMENT_SET_CLEAR",
    "RunResult",
    "build_machine",
    "compile_protected",
    "run_machine",
    "shift_options",
]
