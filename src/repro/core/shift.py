"""High-level SHIFT API: compile, protect and run guest programs.

This is the facade a downstream user starts from::

    from repro.core import build_machine, shift_options
    from repro.taint import parse_policy_config

    options = shift_options(granularity="byte")
    policy = parse_policy_config(POLICY_TEXT)
    machine = build_machine(APP_SOURCE, options=options, policy_config=policy,
                            stdin=b"some input")
    result = run_machine(machine)
    print(result.exit_code, result.alerts)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.compiler.instrument import ShiftOptions, UNINSTRUMENTED
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.cpu.faults import Fault
from repro.cpu.perf import IssueConfig, PerfCounters
from repro.mem.cache import HierarchyConfig
from repro.runtime.devices import DeviceCosts
from repro.runtime.libc_src import LIBC_SOURCE
from repro.runtime.machine import Machine
from repro.taint.engine import AlertRecord, SecurityAlert
from repro.taint.policy import PolicyConfig


def compile_protected(
    sources: Union[str, Iterable[str]],
    options: ShiftOptions = UNINSTRUMENTED,
    include_libc: bool = True,
    adaptive: bool = False,
) -> CompiledProgram:
    """Compile MiniC sources (plus the instrumentable libc) with SHIFT.

    ``adaptive=True`` emits the dual-version (track + fast) layout used
    by :mod:`repro.adaptive` for on-demand tracking.
    """
    if isinstance(sources, str):
        sources = [sources]
    all_sources = ([LIBC_SOURCE] if include_libc else []) + list(sources)
    return compile_program(all_sources, options, adaptive=adaptive)


def build_machine(
    sources: Union[str, Iterable[str], CompiledProgram],
    options: ShiftOptions = UNINSTRUMENTED,
    *,
    policy_config: Optional[PolicyConfig] = None,
    include_libc: bool = True,
    engine_mode: str = "raise",
    files: Optional[Dict[str, bytes]] = None,
    stdin: bytes = b"",
    costs: Optional[DeviceCosts] = None,
    cache_config: Optional[HierarchyConfig] = None,
    issue_config: Optional[IssueConfig] = None,
    thread_quantum: int = 800,
    serialize_bitmap: bool = False,
    tracing: bool = False,
    trace_path: Optional[str] = None,
    trace_capacity: Optional[int] = None,
    engine: str = "predecoded",
    recover_watchdog: Optional[int] = None,
    recover_max_recoveries: int = 1000,
    machine_id: Optional[str] = None,
    net_capacity: Optional[int] = None,
    adaptive: bool = False,
    adaptive_switching: bool = True,
    speculative: bool = False,
) -> Machine:
    """Compile (if needed) and load a guest into a ready Machine.

    ``adaptive=True`` compiles a dual-version program; pre-compiled
    programs carrying an adaptive layout get a controller regardless.
    ``adaptive_switching=False`` loads a dual-version program but pins
    it in track mode (the differential baseline for testing).
    ``speculative=True`` adds the repro.spec controller on top of the
    adaptive one (fast-path execution under taint-range guards).
    """
    if isinstance(sources, CompiledProgram):
        compiled = sources
    else:
        compiled = compile_protected(sources, options, include_libc=include_libc,
                                     adaptive=adaptive)
    return Machine(
        compiled,
        policy_config=policy_config,
        engine_mode=engine_mode,
        files=files,
        stdin=stdin,
        costs=costs,
        cache_config=cache_config,
        issue_config=issue_config,
        thread_quantum=thread_quantum,
        serialize_bitmap=serialize_bitmap,
        tracing=tracing,
        trace_path=trace_path,
        trace_capacity=trace_capacity,
        engine=engine,
        recover_watchdog=recover_watchdog,
        recover_max_recoveries=recover_max_recoveries,
        machine_id=machine_id,
        net_capacity=net_capacity,
        adaptive=adaptive_switching,
        speculative=speculative,
    )


@dataclass
class RunResult:
    """Outcome of one guest run."""

    exit_code: Optional[int]
    alerts: List[AlertRecord]
    counters: PerfCounters
    console: str
    detected: bool = False
    fault: Optional[str] = None

    @property
    def cycles(self) -> float:
        """Total simulated cycles of the run."""
        return self.counters.cycles


def run_machine(machine: Machine, max_instructions: int = 200_000_000) -> RunResult:
    """Run a machine, folding security alerts into the result."""
    exit_code: Optional[int] = None
    detected = False
    fault_text: Optional[str] = None
    try:
        exit_code = machine.run(max_instructions=max_instructions)
    except SecurityAlert:
        detected = True
    except Fault as fault:
        fault_text = str(fault)
    return RunResult(
        exit_code=exit_code,
        alerts=list(machine.alerts),
        counters=machine.counters,
        console=machine.console.text,
        detected=detected or bool(machine.alerts),
        fault=fault_text,
    )
