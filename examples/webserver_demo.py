"""Serve HTTP traffic under SHIFT: protection at ~1% overhead.

Reproduces the spirit of the paper's Apache experiment (Figure 6): the
server is I/O bound, so instrumenting every load and store barely
shows — while a directory-traversal attack on the same server is caught
by policy H2.

Run:  python examples/webserver_demo.py
"""

from repro.apps.webserver import make_request, make_site
from repro.core.shift import build_machine
from repro.harness.runners import (
    PERF_OPTIONS,
    compiled_webserver,
    run_webserver,
    webserver_policy,
)
from repro.taint.engine import SecurityAlert


def measure_overhead(requests=20):
    print("Serving requests at each file size (byte-level tracking):\n")
    print(f"{'file':>8}  {'baseline cycles/req':>20}  {'SHIFT cycles/req':>18}  overhead")
    for kb in (4, 8, 16):
        base = run_webserver(PERF_OPTIONS["none"], kb, requests)
        byte = run_webserver(PERF_OPTIONS["byte"], kb, requests)
        overhead = (byte.latency_cycles / base.latency_cycles - 1) * 100
        print(f"{kb:>6}KB  {base.latency_cycles:>20,.0f}  "
              f"{byte.latency_cycles:>18,.0f}  {overhead:>7.2f}%")
    print("\nThe request path is dominated by device time (accept/recv/"
          "read/send),\nso the instrumentation overhead is in the noise "
          "-- the paper's ~1% result.\n")


def demonstrate_protection():
    print("The same protected server under attack:")
    files = dict(make_site((4,)))
    files["/etc/shadow"] = b"root:$1$secret:19000::"
    machine = build_machine(
        compiled_webserver(PERF_OPTIONS["byte"]),
        policy_config=webserver_policy(),
        files=files,
        tracing=True,
    )
    machine.net.add_request(make_request(4))  # benign first
    machine.net.add_request(b"GET /../etc/shadow HTTP/1.0\r\n\r\n")
    try:
        machine.run()
        print("    no alert (unexpected)")
    except SecurityAlert as alert:
        print(f"    {alert}")
    print(f"    requests completed before the alert: {len(machine.net.completed) - 1}")
    print("\nIncident report (tracing was on):")
    for report in machine.incident_reports():
        print(report.render())
    metrics = machine.metrics().to_dict()
    print(f"\nMetrics registry: {metrics['alerts.total']} alert(s), "
          f"{metrics['taint.bitmap_population']:,} tainted granules, "
          f"{metrics['cpu.instructions']:,} instructions, "
          f"{metrics['trace.events.total']} trace events")


def main():
    print("SHIFT web-server demo (paper Figure 6)\n")
    measure_overhead()
    demonstrate_protection()


if __name__ == "__main__":
    main()
