"""Policies are configuration, not code (paper sections 3.3 and 5.1).

The same protected program behaves differently under different policy
files: what counts as an untrusted source, and which uses of tainted
data raise alerts, are chosen per application.

Run:  python examples/policy_tuning.py
"""

from repro.core import build_machine, run_machine, shift_options
from repro.taint import format_table1, parse_policy_config

# A file utility: copies a user-named file into an export directory.
SOURCE = """
native int read(int fd, char *buf, int n);
native int open(char *path, int flags);
native int write(int fd, char *buf, int n);
native int close(int fd);

char name[64];
char data[256];

int main() {
    int n = read(0, name, 60);
    name[n] = 0;
    int src = open(name, 0);
    if (src < 0) {
        return 1;
    }
    int got = read(src, data, 256);
    close(src);
    char out[128];
    strcpy(out, "/export/");
    strcat(out, name);
    int dst = open(out, 1);
    write(dst, data, got);
    close(dst);
    return 0;
}
"""

STRICT_POLICY = """
# Strict: user input is untrusted and absolute paths are forbidden.
[sources]
stdin = tainted

[policies]
H1 = on
H2 = on

[settings]
document_root = /export
"""

TRUSTING_POLICY = """
# Trusting: the operator vouches for stdin (e.g. a vetted batch file).
[sources]
stdin = trusted

[policies]
H1 = on
H2 = on
"""


def run_with(policy_text, label, stdin):
    machine = build_machine(
        SOURCE,
        shift_options(granularity="byte"),
        policy_config=parse_policy_config(policy_text),
        stdin=stdin,
        files={"/etc/passwd": b"root:x:0:0", "/notes.txt": b"hello"},
    )
    result = run_machine(machine)
    verdict = (f"DETECTED {result.alerts[0].policy_id}" if result.detected
               else f"allowed (exit {result.exit_code})")
    print(f"    {label:<20} input={stdin!r:<18} -> {verdict}")


def main():
    print("The policy catalogue (paper Table 1):\n")
    print(format_table1())
    print("\nSame binary, different policy files:\n")
    run_with(STRICT_POLICY, "strict policy", b"/etc/passwd")
    run_with(STRICT_POLICY, "strict policy", b"notes.txt")
    run_with(TRUSTING_POLICY, "trusting policy", b"/etc/passwd")
    print("\nDetection mechanisms never changed -- only the configuration "
          "file did.")


if __name__ == "__main__":
    main()
