"""Non-control-data attack on a struct field, caught by policy L2.

A message broker keeps per-topic records; each record embeds a pointer
to its statistics slot.  The body-copy loop trusts an attacker-supplied
length, so a long message overflows the ``body`` array straight into
the adjacent ``stats_slot`` pointer — a classic *data* attack (no
return address, no function pointer).  When the broker then updates the
statistics through the corrupted pointer, the store goes through a
tainted address and SHIFT's policy L2 fires.

Run:  python examples/struct_corruption.py
"""

from repro.core import build_machine, run_machine, shift_options
from repro.taint import PolicyConfig

SOURCE = """
native int read(int fd, char *buf, int n);
native void console_log(char *s);

struct record {
    char topic[16];
    char body[32];
    int *stats_slot;        // overflow target: adjacent to body
};

int delivered;
struct record rec;

int handle_message(char *wire, int n) {
    // Wire format: topic (NUL-terminated), length byte, body bytes.
    int i = 0;
    while (wire[i] && i < 15) {
        rec.topic[i] = wire[i];
        i++;
    }
    rec.topic[i] = 0;
    i++;
    int body_len = wire[i] & 255;   // BUG: attacker-controlled length,
    i++;                            // never checked against body[32]
    for (int k = 0; k < body_len; k++) {
        rec.body[k] = wire[i + k];
    }
    *rec.stats_slot = body_len;              // L2 fires here if corrupted
    return body_len;
}

int main() {
    char wire[128];
    rec.stats_slot = &delivered;
    int n = read(0, wire, 120);
    handle_message(wire, n);
    console_log("message delivered");
    return delivered;
}
"""


def run(label, payload):
    machine = build_machine(
        SOURCE,
        shift_options(granularity="byte"),
        policy_config=PolicyConfig(),  # defaults: L1/L2/L3 on
        stdin=payload,
    )
    result = run_machine(machine)
    print(f"--- {label}")
    if result.detected:
        alert = result.alerts[0]
        print(f"    DETECTED -> {alert.policy_id}: {alert.message}")
    else:
        print(f"    delivered ok; stats counter = {result.exit_code}")
    print()


def main():
    print("Struct-field corruption (non-control-data attack) vs policy L2\n")

    benign = b"alerts\x00" + bytes([11]) + b"hello world"
    run("benign message", benign)

    # 32 filler bytes cross body[32]; the next 8 land in stats_slot.
    evil_pointer = (0x4000_0000_0000_0000).to_bytes(8, "little")
    attack = b"alerts\x00" + bytes([40]) + b"A" * 32 + evil_pointer
    run("overflowing message", attack)

    print("The overflow never touches a return address or function")
    print("pointer, yet the tainted stats_slot pointer cannot be used:")
    print("the NaT-consumption fault on the store is policy L2.")


if __name__ == "__main__":
    main()
