"""A sharded fleet of SHIFT machines, with taint on the wire.

Three acts:

1. A four-worker fleet serves a burst of requests with an attack mixed
   in — the frontend shards deterministically, the victim worker rolls
   back and quarantines the attack, and the fleet's merged metrics and
   incident report name exactly who caught what.
2. The same run again: the result digest is bit-identical for a fixed
   routing seed.
3. The two-tier proof: requests pass through a tier-1 reverse-proxy
   fleet onto a tier-2 backend whose own network ingress is *trusted*.
   With the taint transported in the ``TaggedMessage`` frames, the
   backend's H2 policy catches a directory traversal injected two hops
   away; with the tags stripped, the identical bytes leak a planted
   secret without a single alert.

Run:  python examples/fleet_demo.py
"""

from repro.apps.webserver import make_request, traversal_request
from repro.fleet import (
    FleetConfig,
    FleetDriver,
    render_incidents,
    two_tier_experiment,
)


def main():
    print("=== 1. a four-worker fleet under attack " + "=" * 24)
    driver = FleetDriver(FleetConfig(tracing=True), workers=4,
                         routing="round_robin", seed=0)
    burst = [make_request(4) for _ in range(10)]
    burst.insert(3, traversal_request())
    result = driver.run(burst)
    print(f"routed {result.routed} | served {result.served}, "
          f"quarantined {result.quarantined}, ejected {result.ejected}")
    print(render_incidents(result))
    flat = result.metrics().to_dict()
    print(f"fleet sim cycles (slowest worker): "
          f"{flat['fleet.sim_cycles']:.0f}; "
          f"throughput {flat['fleet.sim_throughput']:.0f} req/Gcycle")

    print()
    print("=== 2. determinism " + "=" * 45)
    again = driver.run(burst)
    digest = result.digest()
    print(f"digest      {digest[:32]}...")
    print(f"re-run      {again.digest()[:32]}...")
    print("bit-identical!" if digest == again.digest()
          else "DIVERGED (bug)")

    print()
    print("=== 3. taint crosses the wire " + "=" * 34)
    exp = two_tier_experiment(clean=3, attacks=1, proxy_workers=2, seed=0)
    tagged, control = exp["tagged"], exp["control"]
    print(f"tags transported : backend detected "
          f"{tagged['tier2']['detected_h2']} traversal via H2, "
          f"served {tagged['tier2']['served']} clean, "
          f"secret leaked: {tagged['tier2']['secret_leaked']}")
    print(f"tags stripped    : backend detected "
          f"{control['tier2']['detected_h2']}, "
          f"served {control['tier2']['served']}, "
          f"secret leaked: {control['tier2']['secret_leaked']}")
    print("the wire transport is load-bearing" if exp["proof"]
          else "proof FAILED")


if __name__ == "__main__":
    main()
