"""A scripting engine under DIFT: taint through an interpreter.

The hardest case for information-flow tracking is a *guest
interpreter*: request bytes stop being operands of the protected
program and become data of a MiniScript program the protected program
merely executes.  Between ``recv`` and the ``sql``/``html_output``
sinks the bytes cross the VM's fetch/decode/dispatch loop, operand
stack, string arena, and key-value heap — and because the VM is itself
a MiniC guest instrumented by the SHIFT pipeline, every one of those
copies moves the tag bits too.

This demo runs the MiniScript key-value service in ``recover`` mode:
SQL injection through the script's vulnerable GET verb is caught (H3),
rolled back and quarantined; the parameterized PGET control carrying
the *same hostile key* is served without complaint.

Run:  python examples/script_server.py
"""

from repro.apps.guestvm import (
    KV_SERVICE_SCRIPT,
    kv_get_request,
    kv_pget_request,
    kv_set_request,
    sql_injection_request,
)
from repro.guestvm.asm import assemble, disassemble
from repro.harness.guestbench import GUEST_OPTIONS, GUEST_WATCHDOG
from repro.harness.runners import build_web_machine, guestvm_policy


def main():
    assembled = assemble(KV_SERVICE_SCRIPT)
    print("The guest service is a MiniScript program, compiled host-side")
    print(f"to {len(assembled.blob)} bytes of stack bytecode and embedded "
          "in the MiniC VM:\n")
    for line in disassemble(assembled.blob).splitlines()[:9]:
        print(f"    {line}")
    print("    ...\n")

    machine = build_web_machine(
        "guest-kv", GUEST_OPTIONS,
        policy_config=guestvm_policy(),
        engine_mode="recover",
        recover_watchdog=GUEST_WATCHDOG,
        tracing=True,
    )
    traffic = [
        ("store a value", kv_set_request("user1", "alice")),
        ("look it up (vulnerable GET)", kv_get_request("user1")),
        ("SQL injection via GET", sql_injection_request()),
        ("same hostile key via PGET", kv_pget_request("x' OR '1'='1")),
    ]
    for _, request in traffic:
        machine.net.add_request(request)

    print("Request mix sent to the interpreting server:\n")
    for i, (kind, request) in enumerate(traffic, start=1):
        print(f"  #{i}: {kind:28s} {request.decode()!r}")

    served = machine.run(max_instructions=1_000_000_000)

    print(f"\nServer exited normally after serving {served} requests.\n")
    print("Responses (through the VM's dispatch loop):")
    for conn in machine.net.completed:
        print(f"  {conn.inbound.decode()!r} -> "
              f"{bytes(conn.outbound).decode()!r}")

    print("\nQuarantine log (incident report):")
    for incident in machine.resil.incidents:
        print(f"  request #{incident.request_index}: [{incident.policy_id}] "
              f"{incident.message}")

    alert = machine.alerts[0]
    print("\nThe alert's origin chain reaches the *request bytes*, not")
    print("just a VM-internal address:")
    for origin in alert.origins:
        print(f"  {origin.describe()}")

    print("\nThe injection was caught inside sql() five copies deep in the")
    print("interpreter; the parameterized control with the same hostile")
    print("key was served clean — attack caught, clean traffic served.")


if __name__ == "__main__":
    main()
