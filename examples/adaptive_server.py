"""On-demand taint tracking: pay for tracking only while taint exists.

The paper's instrumentation is always on. This demo runs the same
compute-heavy backend three ways over identical wire-tagged traffic —
always-on tracking, uninstrumented (the floor), and *adaptive*
(``repro.adaptive``): dual-version code whose runtime controller runs
the clean copy while the machine is taint-quiescent and hot-switches to
the instrumented copy the instant a tainted request arrives.

The punchline: the adaptive server runs within a fraction of a percent
of the uninstrumented floor, yet catches the tainted traversal probe at
exactly the same pc with exactly the same policy as always-on tracking.

Run:  python examples/adaptive_server.py
"""

from repro.apps.webserver import make_request, traversal_request
from repro.compiler.instrument import ShiftOptions
from repro.harness.runners import backend_policy, build_web_machine
from repro.taint.bitmap import pack_flags

STRICT = ShiftOptions(granularity=1)


def run_arm(adaptive, traffic):
    machine = build_web_machine(
        "backend",
        STRICT if adaptive != "floor" else ShiftOptions(mode="none"),
        policy_config=backend_policy(),
        sizes=(4, 8),
        engine_mode="alert",
        adaptive="none" if adaptive == "floor" else adaptive,
    )
    for payload, tainted in traffic:
        machine.net.add_request(
            payload, taint_mask=pack_flags([tainted] * len(payload)))
    served = machine.run(max_instructions=500_000_000)
    return machine, served


def main():
    traffic = [(make_request(8), False)] * 12
    traffic.insert(6, (traversal_request(), True))

    print("Identical traffic (12 clean requests + 1 tainted traversal)")
    print("served by three builds of the same backend:\n")

    results = {}
    for arm, label in (("track", "always-on tracking"),
                       ("floor", "uninstrumented floor"),
                       ("on", "adaptive (on-demand)")):
        machine, served = run_arm(arm, traffic)
        alerts = [(a.policy_id, a.pc) for a in machine.alerts]
        results[arm] = (machine, served, alerts)
        print(f"  {label:22s} {machine.counters.cycles:>12,.0f} cycles, "
              f"served {served}, alerts {alerts}")

    track, floor, on = results["track"], results["floor"], results["on"]
    ctrl = on[0].adaptive
    speedup = track[0].counters.cycles / on[0].counters.cycles
    vs_floor = on[0].counters.cycles / floor[0].counters.cycles

    print(f"\nAdaptive vs always-on: {speedup:.2f}x faster "
          f"({vs_floor:.4f}x the uninstrumented floor).")
    print(f"Mode switches: {ctrl.switches_to_fast} to fast, "
          f"{ctrl.switches_to_track} back to track "
          f"(final mode: {ctrl.mode}).")

    assert on[2] == track[2], "adaptive must detect exactly like always-on"
    print("\nSame alert, same policy, same pc as the always-on build —")
    print("tracking switched on exactly while the tainted request lived.")


if __name__ == "__main__":
    main()
