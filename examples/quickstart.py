"""Quickstart: protect a program with SHIFT and watch taint flow.

Run:  python examples/quickstart.py
"""

from repro.core import build_machine, run_machine, shift_options
from repro.taint import parse_policy_config

# A small network service with a SQL-injection bug: the request
# parameter is spliced into a query without escaping.
SOURCE = """
native int read(int fd, char *buf, int n);
native int sql_exec(char *q);
native void console_log(char *s);

char request[64];
char query[160];

int main() {
    int n = read(0, request, 60);
    request[n] = 0;

    strcpy(query, "SELECT balance FROM accounts WHERE owner = '");
    strcat(query, request);              // BUG: no escaping
    strcat(query, "'");

    sql_exec(query);
    console_log("query executed");
    return 0;
}
"""

# Policies are plain configuration, decoupled from the mechanism
# (paper section 3): stdin is an untrusted source, H3 guards SQL.
POLICY = parse_policy_config("""
[sources]
stdin = tainted

[policies]
H3 = on
""")


def run(label, stdin):
    machine = build_machine(
        SOURCE,
        shift_options(granularity="byte"),
        policy_config=POLICY,
        stdin=stdin,
    )
    result = run_machine(machine)
    print(f"--- {label}: input {stdin!r}")
    if result.detected:
        for alert in result.alerts:
            print(f"    DETECTED -> {alert.policy_id}: {alert.message}")
    else:
        print(f"    completed normally, console: {result.console.strip()!r}")
        print(f"    executed queries: {machine.executed_queries}")
    print(f"    simulated cycles: {result.cycles:,.0f}")
    print()


def main():
    print("SHIFT quickstart: taint tracking with speculative hardware\n")
    run("benign request", b"alice")
    run("injection attempt", b"x' OR 'a'='a")


if __name__ == "__main__":
    main()
