"""A webserver that survives attacks: checkpoint/rollback recovery.

The paper observes (section 2.3) that a NaT consumption is a deferred,
*recoverable* exception — detection does not have to mean termination.
This demo runs a deliberately vulnerable server in ``recover`` mode:
the machine checkpoints at every request boundary, and a request that
trips a policy (buffer overflow -> L1, directory traversal -> H2) or
blows its per-request instruction budget (an infinite retry loop) is
rolled back and quarantined while every clean request is served.

Run:  python examples/resilient_server.py
"""

from repro.apps.webserver import (
    RESIL_WEBSERVER_SOURCE,
    make_request,
    make_site,
    overflow_request,
    runaway_request,
    traversal_request,
)
from repro.compiler.instrument import ShiftOptions
from repro.core.shift import build_machine
from repro.harness.runners import webserver_policy

STRICT = ShiftOptions(granularity=1)

DESCRIPTIONS = {
    "alert": "policy alert",
    "runaway": "watchdog (instruction budget)",
    "oom": "guest heap exhausted",
    "fault": "processor fault",
}


def main():
    machine = build_machine(
        RESIL_WEBSERVER_SOURCE, STRICT,
        policy_config=webserver_policy(),
        files=make_site((4,)),
        engine_mode="recover",
        recover_watchdog=2_000_000,
    )
    traffic = [
        ("clean", make_request(4)),
        ("buffer overflow", overflow_request()),
        ("clean", make_request(4)),
        ("directory traversal", traversal_request()),
        ("clean", make_request(4)),
        ("infinite retry loop", runaway_request()),
        ("clean", make_request(4)),
    ]
    for _, request in traffic:
        machine.net.add_request(request)

    print("Request mix sent to the recovering server:\n")
    for i, (kind, _) in enumerate(traffic, start=1):
        print(f"  #{i}: {kind}")

    served = machine.run(max_instructions=1_000_000_000)
    sup = machine.resil

    print(f"\nServer exited normally after serving {served} requests "
          f"({sup.checkpoints_taken} checkpoints taken).\n")
    print("Quarantine log:")
    for incident in sup.incidents:
        why = DESCRIPTIONS.get(incident.reason, incident.reason)
        policy = f" [{incident.policy_id}]" if incident.policy_id else ""
        print(f"  request #{incident.request_index}: {why}{policy} "
              f"at pc={incident.pc}, rolled back "
              f"{incident.instruction_count - incident.rolled_back_to:,} "
              f"instructions")
    print("\nEvery clean request got a 200; every attack was rolled back")
    print("and quarantined — detection without termination.")


if __name__ == "__main__":
    main()
