"""The paper's Figure 1 demo plus a tour of the Table 2 attacks.

Reproduces the qwik-smtpd buffer overflow end to end: the exploit
succeeds against the unprotected build and is caught by taint tracking
in the SHIFT build.  Then it runs a selection of the Table 2 CVE
analogues through the security harness.

Run:  python examples/attack_detection.py
"""

from repro.apps.vulnerable import BFTPD, FIGURE1_APP, QWIKIWIKI, TABLE2_APPS
from repro.compiler.instrument import UNINSTRUMENTED
from repro.core.shift import build_machine, compile_protected
from repro.cpu.faults import Fault
from repro.harness.table2 import (
    BYTE_STRICT,
    _run_scenario,
    evaluate_app,
    unprotected_config,
)
from repro.obs.report import render_incidents
from repro.taint.engine import SecurityAlert


def figure1_demo():
    app = FIGURE1_APP
    print("=" * 70)
    print("Figure 1: qwik-smtpd 0.3 buffer overflow -> open mail relay")
    print("=" * 70)
    print("""
The server checks `strcasecmp(clientip, localip)` before relaying, but
never checks the length of the HELO argument (Fig. 1 line 5).  A long
argument overflows clientHELO[32] straight into localip[64].
""")

    print("[1] Attack against the UNPROTECTED server:")
    machine = _run_scenario(app, UNINSTRUMENTED, unprotected_config(), app.attack)
    print(f"    localip after overflow: {machine.read_string('localip')!r}")
    print(f"    mail relayed: {bool(machine.read_global('relayed'))}  <- exploit works\n")

    print("[2] Same attack against the SHIFT-protected server (byte level):")
    machine = _run_scenario(app, BYTE_STRICT, app.policy_config(), app.attack)
    localip = machine.address_of("localip")
    print(f"    taint bitmap at localip: tainted={machine.taint_map.is_tainted(localip)}")
    print(f"    guest console: {machine.console.text.strip()!r}")
    print(f"    mail relayed: {bool(machine.read_global('relayed'))}  <- attack defeated\n")

    print("[3] Benign session against the SHIFT-protected server:")
    machine = _run_scenario(app, BYTE_STRICT, app.policy_config(), app.benign)
    print(f"    alerts: {machine.alerts or 'none'} (no false positive)\n")


def table2_tour(names=("tar", "qwikiwiki", "phpmyfaq", "bftpd")):
    print("=" * 70)
    print("Table 2 attacks (unprotected vs SHIFT-protected)")
    print("=" * 70)
    by_name = {app.name: app for app in TABLE2_APPS}
    for name in names:
        app = by_name[name]
        evaluation = evaluate_app(app)
        print(f"\n{app.name} ({app.cve}) -- {app.attack_type}")
        print(f"    exploit succeeds unprotected: {evaluation.attack_succeeds_unprotected}")
        print(f"    detected byte/word: {evaluation.detected_byte}/{evaluation.detected_word} "
              f"(policy {evaluation.alert_policy_byte})")
        print(f"    false positives: "
              f"{evaluation.false_positive_byte or evaluation.false_positive_word}")


def incident_forensics():
    print("=" * 70)
    print("Incident forensics (repro.obs): tracing alerts back to their input")
    print("=" * 70)
    print("""
Rerunning one low-level (L2, NaT-consumption fault) and one high-level
(H2, use-point) detection with tracing=True: the incident report shows
the policy, the faulting pc with disassembly, and the taint origin
chain — which bytes of which input stream caused the alert.
""")
    for app in (BFTPD, QWIKIWIKI):
        compiled = compile_protected(app.source, BYTE_STRICT)
        machine = build_machine(compiled, policy_config=app.policy_config(),
                                engine_mode="record", tracing=True)
        scenario = app.attack(machine) if callable(app.attack) else app.attack
        app.prepare(machine, scenario)
        try:
            machine.run(max_instructions=50_000_000)
        except (SecurityAlert, Fault):
            pass
        print(f"{app.name} ({app.cve}) under attack:")
        print(render_incidents(machine))
        summary = machine.obs.tracer.summary()
        print(f"    trace: {summary['events.total']} events "
              f"({summary.get('events.taint_source', 0)} taint sources, "
              f"{machine.obs.tracer.counts.get('syscall', 0)} native calls)\n")


def main():
    figure1_demo()
    table2_tour()
    print()
    incident_forensics()
    print("\nAll attacks detected; benign runs clean (paper Table 2).")


if __name__ == "__main__":
    main()
