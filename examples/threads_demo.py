"""Multi-threaded guests and the bitmap race (paper section 4.4).

The paper's prototype was single-threaded "since accessing the bitmap
is not serialized".  This reproduction implements threads, so the
problem — and its fix — can be demonstrated: two threads storing into
the same 8-byte word perform read-modify-writes on the same taint-tag
byte, and an unlucky preemption tears a taint bit away.

Run:  python examples/threads_demo.py
"""

from repro.compiler.instrument import ShiftOptions
from repro.core import build_machine

SOURCE = """
native int thread_create(int fn, int arg);
native int thread_join(int tid);
native int read(int fd, char *buf, int n);
native int mutex_create();
native void mutex_lock(int m);
native void mutex_unlock(int m);

char secret[16];
char shared[16];
int sink;

int writer_clean(int pad) {
    int i;
    int acc = 0;
    for (i = 0; i < pad; i++) acc += i;
    sink = acc;
    shared[4] = 'x';           // clean byte: tag RMW on the shared word
    return 0;
}

int writer_taint(int unused) {
    shared[0] = secret[0];     // tainted byte: same tag byte
    return 0;
}

int main() {
    read(0, secret, 8);
    int t1 = thread_create((int)&writer_clean, 0);
    int t2 = thread_create((int)&writer_taint, 0);
    thread_join(t1);
    thread_join(t2);
    return 0;
}
"""

BYTE = ShiftOptions(granularity=1, pointer_policy="strict")


def run(serialize_bitmap):
    machine = build_machine(SOURCE, BYTE, stdin=b"TTTTTTTT",
                            thread_quantum=1, serialize_bitmap=serialize_bitmap)
    machine.run()
    tainted = machine.taint_map.is_tainted(machine.address_of("shared"))
    value = machine.memory.load(machine.address_of("shared"), 1)
    return value, tainted, machine.threads.context_switches


def main():
    print("Two threads, byte-level tracking, preemption every instruction.\n")

    value, tainted, switches = run(serialize_bitmap=False)
    print("[1] Unserialized bitmap (the paper's prototype limitation):")
    print(f"    shared[0] data arrived: {value != 0}")
    print(f"    shared[0] taint tag:    {tainted}   <- LOST to the torn RMW")
    print(f"    ({switches} context switches)\n")

    value, tainted, switches = run(serialize_bitmap=True)
    print("[2] Serialized bitmap updates (preemption deferred to")
    print("    instrumentation-sequence boundaries):")
    print(f"    shared[0] data arrived: {value != 0}")
    print(f"    shared[0] taint tag:    {tainted}   <- preserved")
    print(f"    ({switches} context switches)\n")

    print("A lost tag is a false negative: tainted data the policy engine")
    print("can no longer see.  This is exactly why the paper's section 4.4")
    print("defers multi-threading to future work, and what serialized")
    print("bitmap access buys.")


if __name__ == "__main__":
    main()
