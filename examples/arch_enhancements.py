"""Measure the paper's proposed ISA enhancements (Figure 8).

SHIFT works on a stock Itanium, but pays for the missing instructions:
faking a NaT with a speculative load, clearing one with a spill/reload
pair, and relaxing every compare.  This example quantifies what the
three proposed instructions (set-NaT, clear-NaT, NaT-aware compare) buy
on two contrasting kernels.

Run:  python examples/arch_enhancements.py
"""

from repro.apps.spec import BENCHMARKS
from repro.harness.runners import PERF_OPTIONS, run_spec

CONFIGS = [
    ("stock Itanium (byte)", "byte"),
    ("+ set/clear NaT", "byte-set/clear"),
    ("+ NaT-aware compare too", "byte-both"),
]


def main():
    print("Architectural enhancements (paper section 6.3 / Figure 8)\n")
    for name in ("gzip", "mcf"):
        bench = BENCHMARKS[name]
        base = run_spec(bench, PERF_OPTIONS["none"], scale="test")
        print(f"{bench.spec_name} ({bench.description}):")
        previous = None
        for label, config in CONFIGS:
            run = run_spec(bench, PERF_OPTIONS[config], scale="test")
            slowdown = run.cycles / base.cycles
            delta = "" if previous is None else f"  (-{(previous - slowdown) * 100:.0f} pts)"
            print(f"    {label:<28} {slowdown:5.2f}X{delta}")
            previous = slowdown
        print()
    print("gzip is compare-dense over tainted data, so removing the\n"
          "relaxation code recovers a large share of the slowdown; mcf is\n"
          "cache-miss bound with little tainted data, so the enhancements\n"
          "barely register (the paper reports 2%-5% for mcf).")


if __name__ == "__main__":
    main()
